// Sequential xFDD composition (Figure 15 / Appendix E): the hard cases.
// Field modifications flowing into tests, state writes flowing into state
// tests, field-field test generation, and increment resolution.
#include <gtest/gtest.h>

#include "lang/eval.h"
#include "util/status.h"
#include "xfdd/compose.h"
#include "xfdd/xfdd.h"

namespace snap {
namespace {

using namespace snap::dsl;

// Compiles and checks xFDD-vs-eval agreement on one packet + store.
void expect_agree(const PolPtr& p, const Packet& pkt, const Store& st) {
  XfddStore s;
  TestOrder order;
  XfddId d = to_xfdd(s, order, p);
  auto r_eval = eval(p, st, pkt);
  auto r_xfdd = eval_xfdd(s, d, st, pkt);
  EXPECT_EQ(r_eval.packets, r_xfdd.packets) << s.to_string(d);
  EXPECT_TRUE(r_eval.store == r_xfdd.store)
      << "eval store:\n" << r_eval.store.to_string() << "xfdd store:\n"
      << r_xfdd.store.to_string() << s.to_string(d);
}

TEST(SeqCompose, ModThenTestSameFieldResolvesStatically) {
  XfddStore s;
  TestOrder order;
  // f <- 1 ; f = 1  is id-with-mod; f <- 1 ; f = 2 is drop.
  XfddId d1 = to_xfdd(s, order, mod("f", 1) >> filter(test("f", 1)));
  EXPECT_TRUE(s.is_leaf(d1));
  XfddId d2 = to_xfdd(s, order, mod("f", 1) >> filter(test("f", 2)));
  EXPECT_EQ(d2, s.drop_leaf());
}

TEST(SeqCompose, ModThenTestOtherFieldKeepsTest) {
  Packet pkt{{"f", 5}, {"g", 7}};
  Store st;
  expect_agree(mod("f", 1) >> filter(test("g", 7)), pkt, st);
  expect_agree(mod("f", 1) >> filter(test("g", 8)), pkt, st);
}

TEST(SeqCompose, ModThenPrefixTestResolves) {
  XfddStore s;
  TestOrder order;
  Value inside = 0x0a000601;  // 10.0.6.1
  XfddId d = to_xfdd(
      s, order, mod("dstip", inside) >> filter(test_cidr("dstip", "10.0.6.0/24")));
  EXPECT_TRUE(s.is_leaf(d));
  XfddId d2 = to_xfdd(
      s, order, mod("dstip", inside) >> filter(test_cidr("dstip", "10.0.7.0/24")));
  EXPECT_EQ(d2, s.drop_leaf());
}

TEST(SeqCompose, WriteThenStateTestSameIndexResolves) {
  XfddStore s;
  TestOrder order;
  // s[0] <- 1 ; (s[0]=1 ? drop) — composes to an unconditional leaf.
  auto p = sset("sq1", lit(0), lit(1)) >>
           ite(stest("sq1", lit(0), lit(1)), mod("o", 1), mod("o", 2));
  XfddId d = to_xfdd(s, order, p);
  EXPECT_TRUE(s.is_leaf(d)) << s.to_string(d);
  Store st;
  Packet pkt;
  auto r = eval_xfdd(s, d, st, pkt);
  EXPECT_EQ(r.packets.begin()->get("o"), 1);
  expect_agree(p, pkt, st);
}

TEST(SeqCompose, WriteThenStateTestDifferentConstantIndexKeepsTest) {
  // s[0] <- 1 ; s[1] = 1 : indices differ statically, pre-state test stays.
  auto p = sset("sq2", lit(0), lit(1)) >>
           ite(stest("sq2", lit(1), lit(1)), mod("o", 1), mod("o", 2));
  Store st_hit;
  st_hit.set(state_var_id("sq2"), {1}, 1);
  Packet pkt;
  expect_agree(p, pkt, st_hit);
  Store st_miss;
  expect_agree(p, pkt, st_miss);
}

TEST(SeqCompose, WriteThenTestFieldIndicesEmitsFieldFieldTest) {
  // s[srcip] <- 1 ; s[dstip] = 1 : requires a srcip=dstip field-field test.
  auto p = sset("sq3", idx("srcip"), lit(1)) >>
           ite(stest("sq3", idx("dstip"), lit(1)), mod("o", 1), mod("o", 2));
  XfddStore s;
  TestOrder order;
  XfddId d = to_xfdd(s, order, p);
  // The diagram must contain a field-field test node.
  bool found_ff = false;
  for (XfddId i = 0; i < s.size(); ++i) {
    if (!s.is_leaf(i) && std::holds_alternative<TestFF>(s.branch_node(i).test)) {
      found_ff = true;
    }
  }
  EXPECT_TRUE(found_ff) << s.to_string(d);

  // Behaviour matches eval whether or not the fields coincide.
  Store st;
  Packet equal_fields{{"srcip", 7}, {"dstip", 7}};
  expect_agree(p, equal_fields, st);
  Packet diff_fields{{"srcip", 7}, {"dstip", 8}};
  expect_agree(p, diff_fields, st);
  Store st2;
  st2.set(state_var_id("sq3"), {8}, 1);
  expect_agree(p, diff_fields, st2);
}

TEST(SeqCompose, IncrementThenConstantTestShiftsThreshold) {
  // c[srcip]++ ; c[srcip] = 3  must become a pre-state test c[srcip] = 2.
  auto p = sinc("sq4", idx("srcip")) >>
           ite(stest("sq4", idx("srcip"), lit(3)), mod("o", 1), mod("o", 2));
  XfddStore s;
  TestOrder order;
  XfddId d = to_xfdd(s, order, p);
  bool found_shifted = false;
  for (XfddId i = 0; i < s.size(); ++i) {
    if (s.is_leaf(i)) continue;
    const auto* ts = std::get_if<TestState>(&s.branch_node(i).test);
    if (ts && ts->value.size() == 1 && ts->value.atoms()[0].is_value() &&
        ts->value.atoms()[0].value() == 2) {
      found_shifted = true;
    }
  }
  EXPECT_TRUE(found_shifted) << s.to_string(d);

  Packet pkt{{"srcip", 5}};
  Store at2;
  at2.set(state_var_id("sq4"), {5}, 2);
  expect_agree(p, pkt, at2);
  Store at1;
  at1.set(state_var_id("sq4"), {5}, 1);
  expect_agree(p, pkt, at1);
}

TEST(SeqCompose, DoubleIncrementShiftsByTwo) {
  auto p = sinc("sq5", idx("srcip")) >>
           (sinc("sq5", idx("srcip")) >>
            ite(stest("sq5", idx("srcip"), lit(2)), mod("o", 1), mod("o", 2)));
  Packet pkt{{"srcip", 5}};
  Store empty;
  expect_agree(p, pkt, empty);  // 0+2 = 2 -> o=1
  Store at1;
  at1.set(state_var_id("sq5"), {5}, 1);
  expect_agree(p, pkt, at1);  // 1+2 = 3 -> o=2
}

TEST(SeqCompose, SetThenIncrementThenTest) {
  // s[0] <- 3 ; s[0]++ ; s[0] = 4 resolves statically to true.
  auto p = sset("sq6", lit(0), lit(3)) >>
           (sinc("sq6", lit(0)) >>
            ite(stest("sq6", lit(0), lit(4)), mod("o", 1), mod("o", 2)));
  XfddStore s;
  TestOrder order;
  XfddId d = to_xfdd(s, order, p);
  EXPECT_TRUE(s.is_leaf(d)) << s.to_string(d);
  Packet pkt;
  Store st;
  expect_agree(p, pkt, st);
}

TEST(SeqCompose, WriteFieldValueThenConstantTestEmitsFieldTest) {
  // s[0] <- f ; s[0] = 5 becomes the field test f = 5.
  auto p = sset("sq7", lit(0), fld("f")) >>
           ite(stest("sq7", lit(0), lit(5)), mod("o", 1), mod("o", 2));
  Packet hit{{"f", 5}};
  Packet miss{{"f", 6}};
  Store st;
  expect_agree(p, hit, st);
  expect_agree(p, miss, st);
}

TEST(SeqCompose, IncrementAgainstFieldComparisonRejected) {
  // c[0]++ ; c[0] = f cannot be compiled (threshold is not constant).
  auto p = sinc("sq8", lit(0)) >>
           ite(stest("sq8", lit(0), fld("f")), mod("o", 1), mod("o", 2));
  XfddStore s;
  TestOrder order;
  EXPECT_THROW(to_xfdd(s, order, p), CompileError);
}

TEST(SeqCompose, MaybeEqualIndexWithIncrement) {
  // c[srcip]++ ; c[dstip] = 1 : needs srcip=dstip disambiguation and then a
  // shifted threshold on the true side.
  auto p = sinc("sq9", idx("srcip")) >>
           ite(stest("sq9", idx("dstip"), lit(1)), mod("o", 1), mod("o", 2));
  Store st;
  Packet same{{"srcip", 4}, {"dstip", 4}};
  expect_agree(p, same, st);
  Packet diff{{"srcip", 4}, {"dstip", 5}};
  expect_agree(p, diff, st);
  Store st_d5;
  st_d5.set(state_var_id("sq9"), {5}, 1);
  expect_agree(p, diff, st_d5);
}

TEST(SeqCompose, DropAbsorbs) {
  XfddStore s;
  TestOrder order;
  XfddId d = to_xfdd(s, order, filter(drop()) >> mod("f", 1));
  EXPECT_EQ(d, s.drop_leaf());
  XfddId d2 = to_xfdd(s, order, mod("f", 1) >> filter(drop()));
  EXPECT_EQ(d2, s.drop_leaf());
}

TEST(SeqCompose, SequentialWritesToSameVarAllowed) {
  auto p = sset("sq10", lit(0), lit(1)) >> sset("sq10", lit(0), lit(2));
  Packet pkt;
  Store st;
  expect_agree(p, pkt, st);
  XfddStore s;
  TestOrder order;
  XfddId d = to_xfdd(s, order, p);
  auto r = eval_xfdd(s, d, st, pkt);
  EXPECT_EQ(r.store.get(state_var_id("sq10"), {0}), 2);
}

TEST(SeqCompose, ParallelThenSequentialSharedPrefixFactoring) {
  // c[0]++ ; (o<-1 + o<-2): the increment must happen once even though both
  // copies carry it.
  auto p = sinc("sq11", lit(0)) >> (mod("o", 1) + mod("o", 2));
  XfddStore s;
  TestOrder order;
  XfddId d = to_xfdd(s, order, p);
  Store st;
  Packet pkt;
  auto r = eval_xfdd(s, d, st, pkt);
  EXPECT_EQ(r.packets.size(), 2u);
  EXPECT_EQ(r.store.get(state_var_id("sq11"), {0}), 1);
  expect_agree(p, pkt, st);
}

TEST(SeqCompose, DnsTunnelEndToEndAgainstOracle) {
  // The full Figure 1 program composed with a 2-port assign-egress.
  auto dns = land(test_cidr("dstip", "10.0.6.0/24"), test("srcport", 53));
  auto prog =
      ite(dns,
          sset("orphan", idx("dstip", "dns.rdata"), lit(kTrue)) >>
              (sinc("susp-client", idx("dstip")) >>
               ite(stest("susp-client", idx("dstip"), lit(2)),
                   sset("blacklist", idx("dstip"), lit(kTrue)), filter(id()))),
          ite(land(test_cidr("srcip", "10.0.6.0/24"),
                   stest("orphan", idx("srcip", "dstip"), lit(kTrue))),
              sset("orphan", idx("srcip", "dstip"), lit(kFalse)) >>
                  sdec("susp-client", idx("srcip")),
              filter(id()))) >>
      ite(test_cidr("dstip", "10.0.6.0/24"), mod("outport", 6),
          mod("outport", 1));

  Value client = 0x0a000632;  // 10.0.6.50
  Value server = 0x5db8d822;  // 93.184.216.34

  XfddStore s;
  TestOrder order;
  XfddId d = to_xfdd(s, order, prog);

  // Run a small packet trace through both semantics in lockstep.
  std::vector<Packet> trace{
      Packet{{"dstip", client}, {"srcport", 53}, {"dns.rdata", server},
             {"srcip", 99}},
      Packet{{"srcip", client}, {"dstip", server}, {"srcport", 1000}},
      Packet{{"dstip", client}, {"srcport", 53}, {"dns.rdata", server},
             {"srcip", 99}},
      Packet{{"dstip", client}, {"srcport", 53}, {"dns.rdata", server + 1},
             {"srcip", 99}},
      Packet{{"srcip", 5}, {"dstip", 6}, {"srcport", 80}},
  };
  Store st_eval, st_xfdd;
  for (const Packet& pkt : trace) {
    auto r1 = eval(prog, st_eval, pkt);
    auto r2 = eval_xfdd(s, d, st_xfdd, pkt);
    EXPECT_EQ(r1.packets, r2.packets);
    EXPECT_TRUE(r1.store == r2.store);
    st_eval = r1.store;
    st_xfdd = r2.store;
  }
  // After two unused resolutions the client is blacklisted.
  EXPECT_EQ(st_eval.get(state_var_id("blacklist"), {client}), kTrue);
}

}  // namespace
}  // namespace snap
