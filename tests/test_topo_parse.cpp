// The textual topology format used by the snapc CLI.
#include <gtest/gtest.h>

#include "topo/parse.h"
#include "util/status.h"

namespace snap {
namespace {

TEST(TopoParse, RoundTrip) {
  const char* text = R"(
    name tiny
    switches 3
    link 0 1 10
    link 1 2 40
    port 1 0
    port 2 2
  )";
  Topology t = parse_topology(text);
  EXPECT_EQ(t.name(), "tiny");
  EXPECT_EQ(t.num_switches(), 3);
  EXPECT_EQ(t.links().size(), 4u);  // duplex
  EXPECT_EQ(t.port_switch(1), 0);
  EXPECT_EQ(t.port_switch(2), 2);
  // Serialize and re-parse.
  Topology t2 = parse_topology(topology_to_text(t));
  EXPECT_EQ(t2.num_switches(), t.num_switches());
  EXPECT_EQ(t2.links().size(), t.links().size());
  EXPECT_EQ(t2.ports(), t.ports());
}

TEST(TopoParse, CommentsAndBlankLines) {
  const char* text =
      "# header\n\nswitches 2\nlink 0 1 10  # a link\n\nport 1 0\n";
  Topology t = parse_topology(text);
  EXPECT_EQ(t.num_switches(), 2);
  EXPECT_EQ(t.links().size(), 2u);
}

TEST(TopoParse, Errors) {
  EXPECT_THROW(parse_topology("link 0 1 10\n"), ParseError);  // no switches
  EXPECT_THROW(parse_topology("switches 0\n"), ParseError);
  EXPECT_THROW(parse_topology("switches 2\nlink 0 5 10\n"), ParseError);
  EXPECT_THROW(parse_topology("switches 2\nlink 0 1 -1\n"), ParseError);
  EXPECT_THROW(parse_topology("switches 2\nbogus 1\n"), ParseError);
  EXPECT_THROW(parse_topology("switches 2\nport 1 0\nport 1 1\n"),
               ParseError);  // duplicate port
}

}  // namespace
}  // namespace snap
