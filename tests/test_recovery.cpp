// §7.3 extensions: per-switch state capacity (resource constraints) and
// switch-failure recovery (fault tolerance).
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "compiler/pipeline.h"
#include "dataplane/network.h"
#include "milp/stmodel.h"
#include "topo/gen.h"
#include "util/status.h"

namespace snap {
namespace {

using namespace snap::dsl;

struct Compiled {
  XfddStore store;
  XfddId root;
  DependencyGraph deps;
  TestOrder order;
  PacketStateMap psmap;

  Compiled(const PolPtr& p, const std::vector<PortId>& ports)
      : deps(DependencyGraph::build(p)), order(deps.test_order()) {
    root = to_xfdd(store, order, p);
    psmap = packet_state_map(store, root, ports, order);
  }
};

// Two independent counters; with capacity 1 they cannot share a switch.
PolPtr two_counters(const std::string& prefix) {
  return sinc(prefix + ".a", idx("srcip")) +
         sinc(prefix + ".b", idx("dstip"));
}

TEST(Capacity, ScalableSolverRespectsPerSwitchLimit) {
  Topology topo = make_figure2_campus();
  auto prog = two_counters("cap1") >>
              apps::assign_egress({{"10.0.1.0/24", 1}, {"10.0.6.0/24", 6}});
  Compiled c(prog, {1, 6});
  TrafficMatrix tm;
  tm.set_demand(1, 6, 1.0);
  tm.set_demand(6, 1, 1.0);

  ScalableOptions unconstrained;
  auto free = solve_scalable(topo, tm, c.psmap, c.deps, unconstrained);

  ScalableOptions limited;
  limited.state_capacity = 1;
  auto capped = solve_scalable(topo, tm, c.psmap, c.deps, limited);
  EXPECT_NE(capped.placement.at(state_var_id("cap1.a")),
            capped.placement.at(state_var_id("cap1.b")));
  // The capped solution can only be worse or equal.
  EXPECT_GE(capped.routing.objective, free.routing.objective - 1e-9);
}

TEST(Capacity, ExactMilpRespectsPerSwitchLimit) {
  Topology topo("line3", 3);
  topo.add_duplex(0, 1, 10);
  topo.add_duplex(1, 2, 10);
  topo.attach_port(1, 0);
  topo.attach_port(2, 2);
  auto prog = two_counters("cap2") >>
              apps::assign_egress({{"10.0.1.0/24", 1}, {"10.0.2.0/24", 2}});
  Compiled c(prog, {1, 2});
  TrafficMatrix tm;
  tm.set_demand(1, 2, 1.0);
  tm.set_demand(2, 1, 1.0);

  StModelOptions opts;
  opts.state_capacity = 1;
  StModel model = StModel::build(topo, tm, c.psmap, c.deps, opts);
  auto r = model.solve();
  EXPECT_NE(r.placement.at(state_var_id("cap2.a")),
            r.placement.at(state_var_id("cap2.b")));
}

TEST(Capacity, GreedyPathHonorsCapacityOnLargeInstances) {
  Topology topo = make_igen(40, 3);
  // Five independent counters force spreading with capacity 1; the tuple
  // space (40^5) exceeds exhaustive enumeration, exercising the greedy
  // path.
  PolPtr prog = sinc("cap3.v0", idx("srcip"));
  for (int i = 1; i < 5; ++i) {
    prog = prog + sinc("cap3.v" + std::to_string(i), idx("dstip"));
  }
  auto subnets = apps::default_subnets(topo.ports());
  prog = prog >> apps::assign_egress(subnets);
  Compiled c(prog, topo.ports());
  TrafficMatrix tm = gravity_traffic(topo, 5.0, 6);
  ScalableOptions opts;
  opts.state_capacity = 1;
  opts.max_enumeration = 1000;  // force the greedy path
  auto r = solve_scalable(topo, tm, c.psmap, c.deps, opts);
  std::map<int, int> per_switch;
  for (int i = 0; i < 5; ++i) {
    ++per_switch[r.placement.at(state_var_id("cap3.v" + std::to_string(i)))];
  }
  for (const auto& [sw, count] : per_switch) {
    EXPECT_LE(count, 1) << "switch " << sw;
  }
}

TEST(Recovery, StateMovesOffFailedSwitch) {
  // A ring so every failure leaves the network connected.
  Topology topo("ring6", 6);
  for (int i = 0; i < 6; ++i) topo.add_duplex(i, (i + 1) % 6, 10);
  topo.attach_port(1, 0);
  topo.attach_port(2, 3);
  TrafficMatrix tm;
  tm.set_demand(1, 2, 1.0);
  tm.set_demand(2, 1, 1.0);
  auto prog = sinc("rec1.cnt", idx("srcip")) >>
              apps::assign_egress({{"10.0.1.0/24", 1}, {"10.0.2.0/24", 2}});

  Compiler compiler(topo, tm);
  CompileResult before = compiler.compile(prog);
  int loc = before.pr.placement.at(state_var_id("rec1.cnt"));

  auto rec = recover_from_switch_failure(topo, tm, prog, loc);
  int new_loc = rec.result.pr.placement.at(state_var_id("rec1.cnt"));
  EXPECT_NE(new_loc, loc);
  // No path may traverse the failed switch.
  for (const auto& [uv, path] : rec.result.pr.routing.paths) {
    EXPECT_EQ(std::find(path.begin(), path.end(), loc), path.end());
  }
  // The recovered deployment still works end to end.
  Network net(rec.degraded, *rec.result.store, rec.result.root,
              rec.result.pr.placement, rec.result.pr.routing,
              rec.result.order);
  Packet pkt{{"srcip", 7}, {"dstip", 0x0a000205}, {"inport", 1}};
  auto out = net.inject(1, pkt);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].outport, 2);
  EXPECT_EQ(net.switch_at(new_loc).state().get(state_var_id("rec1.cnt"), {7}),
            1);
}

TEST(Recovery, DemandsOfFailedEdgeSwitchDisappear) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 20.0, 17);
  auto prog = sinc("rec2.cnt", idx("inport")) >>
              apps::assign_egress({{"10.0.1.0/24", 1}, {"10.0.2.0/24", 2}});
  // Fail D1 (switch 2), which hosts port 3.
  auto rec = recover_from_switch_failure(topo, tm, prog, 2);
  EXPECT_EQ(rec.degraded.ports().size(), 5u);
  for (const auto& [uv, path] : rec.result.pr.routing.paths) {
    EXPECT_NE(uv.first, 3);
    EXPECT_NE(uv.second, 3);
    EXPECT_EQ(std::find(path.begin(), path.end(), 2), path.end());
  }
}

TEST(Recovery, FailingDisconnectingSwitchIsInfeasible) {
  // On a line, the middle switch is a cut vertex: recovery must fail
  // loudly, not silently misroute.
  Topology topo("line3b", 3);
  topo.add_duplex(0, 1, 10);
  topo.add_duplex(1, 2, 10);
  topo.attach_port(1, 0);
  topo.attach_port(2, 2);
  TrafficMatrix tm;
  tm.set_demand(1, 2, 1.0);
  auto prog = apps::assign_egress({{"10.0.1.0/24", 1}, {"10.0.2.0/24", 2}});
  EXPECT_THROW(recover_from_switch_failure(topo, tm, prog, 1),
               InfeasibleError);
}

}  // namespace
}  // namespace snap
