// Unit tests for the language core: fields, packets, expressions, AST
// construction and sizes.
#include <gtest/gtest.h>

#include "lang/ast.h"
#include "lang/expr.h"
#include "lang/packet.h"
#include "lang/printer.h"

namespace snap {
namespace {

using namespace snap::dsl;

TEST(Field, InterningIsStable) {
  FieldId a = field_id("dstip");
  FieldId b = field_id("dstip");
  EXPECT_EQ(a, b);
  EXPECT_EQ(field_name(a), "dstip");
  EXPECT_TRUE(is_known_field("dstip"));
  EXPECT_NE(field_id("srcip"), field_id("dstip"));
}

TEST(Field, StateVarsAreSeparateNamespace) {
  StateVarId s = state_var_id("orphan");
  EXPECT_EQ(state_var_name(s), "orphan");
  EXPECT_TRUE(is_known_state_var("orphan"));
}

TEST(Packet, SetGetOverwrite) {
  Packet p;
  EXPECT_FALSE(p.get("dstip").has_value());
  p.set("dstip", 42);
  EXPECT_EQ(p.get("dstip"), 42);
  p.set("dstip", 43);
  EXPECT_EQ(p.get("dstip"), 43);
  p.set("srcip", 1);
  EXPECT_EQ(p.get("srcip"), 1);
  EXPECT_EQ(p.entries().size(), 2u);
}

TEST(Packet, OrderingAndEquality) {
  Packet a{{"srcip", 1}, {"dstip", 2}};
  Packet b{{"dstip", 2}, {"srcip", 1}};
  EXPECT_EQ(a, b);
  Packet c{{"srcip", 1}, {"dstip", 3}};
  EXPECT_NE(a, c);
  EXPECT_TRUE(a < c || c < a);
}

TEST(Expr, EvalAgainstPacket) {
  Packet p{{"srcip", 7}, {"dstip", 9}};
  Expr e = dsl::idx("srcip", "dstip");
  auto v = e.eval(p);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, (ValueVec{7, 9}));

  Expr lit5 = Expr::of_value(5);
  EXPECT_EQ(*lit5.eval(p), (ValueVec{5}));

  Expr missing = Expr::of_field("dns.rdata");
  EXPECT_FALSE(missing.eval(p).has_value());
}

TEST(Expr, Substitution) {
  Expr e = dsl::idx("srcip", "dstip");
  Expr sub = e.substituted({{field_id("srcip"), 99}});
  Packet p{{"dstip", 9}};
  EXPECT_EQ(*sub.eval(p), (ValueVec{99, 9}));
  EXPECT_EQ(sub.referenced_fields().size(), 1u);
}

TEST(Ast, SizesCountNodes) {
  auto p = ite(test("srcport", 53) & test_cidr("dstip", "10.0.6.0/24"),
               sset("orphan", idx("dstip"), lit(kTrue)) >>
                   sinc("susp", idx("dstip")),
               filter(id()));
  // if-node + (and + 2 tests) + (seq + 2 state ops) + id
  EXPECT_EQ(ast_size(p), 8u);
}

TEST(Ast, PrinterProducesReadableSyntax) {
  auto p = ite(test("srcport", 53), mod("outport", 6), filter(drop()));
  std::string s = to_string(p);
  EXPECT_NE(s.find("if srcport = 53 then"), std::string::npos);
  EXPECT_NE(s.find("outport <- 6"), std::string::npos);
  EXPECT_NE(s.find("else"), std::string::npos);
}

TEST(Ast, CidrTestPrints) {
  auto x = test_cidr("dstip", "10.0.6.0/24");
  EXPECT_EQ(to_string(x), "dstip = 10.0.6.0/24");
}

}  // namespace
}  // namespace snap
