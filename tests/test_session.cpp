// The event-driven Session API: per-event phase subsets (Table 4), value
// ownership of the inputs (the old Compiler dangled on temporaries), and
// delta-patched Network equivalence with cold-start deployments across the
// 11-policy corpus.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "compiler/pipeline.h"
#include "compiler/session.h"
#include "dataplane/network.h"
#include "topo/gen.h"
#include "util/rng.h"
#include "util/status.h"

namespace snap {
namespace {

using namespace snap::dsl;

Value ip(std::uint32_t a, std::uint32_t b, std::uint32_t c,
         std::uint32_t d) {
  return static_cast<Value>((a << 24) | (b << 16) | (c << 8) | d);
}

std::vector<std::pair<std::string, PortId>> campus_subnets() {
  std::vector<std::pair<std::string, PortId>> subnets;
  for (int i = 1; i <= 6; ++i) {
    subnets.emplace_back("10.0." + std::to_string(i) + ".0/24", i);
  }
  return subnets;
}

PolPtr tunnel_program(const std::string& prefix) {
  return apps::dns_tunnel_detect(prefix, "10.0.6.0/24", 2) >>
         apps::assign_egress(campus_subnets());
}

// ---- ownership ------------------------------------------------------------

TEST(Session, OwnsCopiesOfTemporaryInputs) {
  // Both arguments are temporaries: the pre-Session Compiler kept a
  // const Topology& and read it after the temporary died. The Session (and
  // the Compiler shim over it) own copies, so this is now well-defined —
  // the CI_SANITIZE=1 ASan pass of tools/ci.sh guards the regression.
  Session s(make_figure2_campus(),
            gravity_traffic(make_figure2_campus(), 20.0, 1));
  EventResult ev = s.full_compile(tunnel_program("own1"));
  EXPECT_EQ(s.topology().num_switches(), 12);
  EXPECT_EQ(ev.delta.added.size(), 12u);  // cold start deploys everything
  EXPECT_GT(s.result().path_rules, 0u);

  Compiler shim(make_figure2_campus(),
                gravity_traffic(make_figure2_campus(), 20.0, 1));
  CompileResult r = shim.compile(tunnel_program("own2"));
  EXPECT_EQ(shim.topology().num_switches(), 12);
  EXPECT_EQ(r.slices.size(), 12u);
}

TEST(Session, EventsBeforeFullCompileThrow) {
  Session s(make_figure2_campus(),
            gravity_traffic(make_figure2_campus(), 20.0, 1));
  EXPECT_FALSE(s.compiled());
  EXPECT_THROW(s.set_policy(tunnel_program("pre")), Error);
  EXPECT_THROW(s.set_traffic(TrafficMatrix{}), Error);
  EXPECT_THROW(s.fail_switch(6), Error);
  EXPECT_THROW(s.result(), Error);
}

// ---- phase subsets (Table 4) ----------------------------------------------

TEST(Session, ColdStartRunsAllSixPhases) {
  Session s(make_figure2_campus(),
            gravity_traffic(make_figure2_campus(), 20.0, 3));
  EventResult ev = s.full_compile(tunnel_program("cs1"));
  for (PhaseId p :
       {PhaseId::kP1Dependency, PhaseId::kP2Xfdd, PhaseId::kP3Psmap,
        PhaseId::kP4Model, PhaseId::kP5SolveSt, PhaseId::kP6Rulegen}) {
    EXPECT_TRUE(ev.ran(p)) << to_string(p);
  }
  EXPECT_FALSE(ev.ran(PhaseId::kP5SolveTe));
  EXPECT_GT(ev.times.cold_start(), 0.0);
}

TEST(Session, SetTrafficRunsOnlyTeSolveAndRulegen) {
  Topology topo = make_figure2_campus();
  Session s(topo, gravity_traffic(topo, 20.0, 3));
  s.full_compile(tunnel_program("te1"));
  Placement before = s.result().pr.placement;

  EventResult ev = s.set_traffic(gravity_traffic(topo, 20.0, 33));
  EXPECT_EQ(ev.phases_run,
            (std::vector<PhaseId>{PhaseId::kP5SolveTe, PhaseId::kP6Rulegen}));
  EXPECT_EQ(ev.times.p1_dependency, 0.0);
  EXPECT_EQ(ev.times.p2_xfdd, 0.0);
  EXPECT_EQ(ev.times.p3_psmap, 0.0);
  EXPECT_EQ(ev.times.p4_model, 0.0);
  EXPECT_EQ(ev.times.p5_solve_st, 0.0);
  EXPECT_GT(ev.times.topo_change(), 0.0);
  // Placement is kept, so every program is bitwise identical: the delta
  // touches no switch.
  EXPECT_EQ(s.result().pr.placement.switch_of, before.switch_of);
  EXPECT_TRUE(ev.delta.changed.empty());
  EXPECT_TRUE(ev.delta.added.empty());
  EXPECT_TRUE(ev.delta.removed.empty());
  EXPECT_EQ(ev.delta.unchanged.size(), 12u);
  EXPECT_EQ(ev.delta.programs_touched(), 0u);
}

TEST(Session, SetPolicyNeverRunsModelCreation) {
  Topology topo = make_figure2_campus();
  Session s(topo, gravity_traffic(topo, 20.0, 4));
  s.full_compile(tunnel_program("pc1"));

  EventResult ev = s.set_policy(
      apps::heavy_hitter("pc2", 5) >> apps::assign_egress(campus_subnets()));
  EXPECT_TRUE(ev.ran(PhaseId::kP1Dependency));
  EXPECT_TRUE(ev.ran(PhaseId::kP2Xfdd));
  EXPECT_TRUE(ev.ran(PhaseId::kP3Psmap));
  EXPECT_FALSE(ev.ran(PhaseId::kP4Model));
  EXPECT_TRUE(ev.ran(PhaseId::kP5SolveSt));
  EXPECT_FALSE(ev.ran(PhaseId::kP5SolveTe));
  EXPECT_TRUE(ev.ran(PhaseId::kP6Rulegen));
  EXPECT_EQ(ev.times.p4_model, 0.0);
  EXPECT_GT(ev.times.policy_change(), 0.0);
  // The new policy reaches the cache and the deployed programs.
  EXPECT_TRUE(
      s.result().pr.placement.at(state_var_id("pc2.heavy-hitter")) >= 0);
  EXPECT_GT(ev.delta.programs_touched(), 0u);
}

TEST(Session, FailureReusesPolicyAnalysisAndRestoreUndoesIt) {
  Topology topo = make_figure2_campus();
  Session s(topo, gravity_traffic(topo, 20.0, 5));
  s.full_compile(tunnel_program("fr1"));
  const XfddStore* store_before = s.result().store.get();

  // Fail core switch C1 (id 6, hosts no OBS port; the mesh stays
  // connected).
  EventResult ev = s.fail_switch(6);
  EXPECT_FALSE(ev.ran(PhaseId::kP1Dependency));
  EXPECT_FALSE(ev.ran(PhaseId::kP2Xfdd));
  EXPECT_TRUE(ev.ran(PhaseId::kP3Psmap));
  EXPECT_TRUE(ev.ran(PhaseId::kP4Model));
  EXPECT_TRUE(ev.ran(PhaseId::kP5SolveSt));
  EXPECT_TRUE(ev.ran(PhaseId::kP6Rulegen));
  // The xFDD artifacts are literally reused, not rebuilt.
  EXPECT_EQ(s.result().store.get(), store_before);
  // The failed switch lost its program; no placement or path touches it.
  EXPECT_EQ(ev.delta.removed, std::vector<int>{6});
  EXPECT_EQ(s.failed_switches(), std::set<int>{6});
  for (const auto& [var, sw] : s.result().pr.placement.switch_of) {
    EXPECT_NE(sw, 6);
  }
  for (const auto& [uv, path] : s.result().pr.routing.paths) {
    EXPECT_EQ(std::find(path.begin(), path.end(), 6), path.end());
  }

  EventResult back = s.restore_switch(6);
  EXPECT_EQ(back.delta.added, std::vector<int>{6});
  EXPECT_TRUE(s.failed_switches().empty());
  EXPECT_EQ(s.topology().links().size(), s.base_topology().links().size());
}

TEST(Session, InfeasibleFailureLeavesSessionUntouched) {
  // On a line the middle switch is a cut vertex: failing it must throw and
  // roll back completely.
  Topology topo("line3s", 3);
  topo.add_duplex(0, 1, 10);
  topo.add_duplex(1, 2, 10);
  topo.attach_port(1, 0);
  topo.attach_port(2, 2);
  TrafficMatrix tm;
  tm.set_demand(1, 2, 1.0);
  tm.set_demand(2, 1, 1.0);
  Session s(topo, tm);
  s.full_compile(sinc("inf1.cnt", idx("srcip")) >>
                 apps::assign_egress({{"10.0.1.0/24", 1},
                                      {"10.0.2.0/24", 2}}));
  auto deployed_before = s.deployed_programs();
  EXPECT_THROW(s.fail_switch(1), InfeasibleError);
  // Nothing committed: topology, failure set and deployment are unchanged,
  // and the session still serves events.
  EXPECT_TRUE(s.failed_switches().empty());
  EXPECT_EQ(s.topology().links().size(), 4u);
  EXPECT_EQ(s.deployed_programs(), deployed_before);
  EXPECT_NO_THROW(s.set_traffic(tm));
}

TEST(Session, InfeasiblePolicyChangeRollsBackTheRetainedModel) {
  // One allowed stateful switch with capacity 1: a one-group policy fits,
  // a two-group policy is infeasible. The failed set_policy must leave the
  // session fully usable (the retained model was rebound mid-event and has
  // to be rebound back).
  Topology topo("line3p", 3);
  topo.add_duplex(0, 1, 10);
  topo.add_duplex(1, 2, 10);
  topo.attach_port(1, 0);
  topo.attach_port(2, 2);
  TrafficMatrix tm;
  tm.set_demand(1, 2, 1.0);
  tm.set_demand(2, 1, 1.0);
  CompilerOptions opts;
  opts.stateful_switches = {1};
  opts.state_capacity = 1;
  Session s(topo, tm, opts);
  auto egress =
      apps::assign_egress({{"10.0.1.0/24", 1}, {"10.0.2.0/24", 2}});
  s.full_compile(sinc("ro1.a", idx("srcip")) >> egress);

  // Two independent counters are two state groups: over capacity.
  EXPECT_THROW(s.set_policy((sinc("ro2.a", idx("srcip")) +
                             sinc("ro2.b", idx("dstip"))) >>
                            egress),
               InfeasibleError);
  // Committed state is the old policy...
  EXPECT_EQ(s.result().pr.placement.at(state_var_id("ro1.a")), 1);
  // ...and both re-solve paths still work against the restored model.
  EXPECT_NO_THROW(s.set_traffic(tm));
  EXPECT_NO_THROW(s.set_policy(sinc("ro3.a", idx("dstip")) >> egress));
}

TEST(Session, SetTrafficRoutesDemandPairsUnseenAtColdStart) {
  // Pair (3,4) had zero demand when the model was created; a traffic
  // change that introduces it must still get it a path (the model is
  // rebound, not just re-weighted).
  Topology topo = make_figure2_campus();
  TrafficMatrix tm;
  tm.set_demand(1, 2, 1.0);
  Session s(topo, tm);
  s.full_compile(tunnel_program("nd1"));
  EXPECT_EQ(s.result().pr.routing.paths.count({3, 4}), 0u);

  TrafficMatrix shifted;
  shifted.set_demand(1, 2, 1.0);
  shifted.set_demand(3, 4, 2.0);
  EventResult ev = s.set_traffic(shifted);
  EXPECT_EQ(ev.phases_run,
            (std::vector<PhaseId>{PhaseId::kP5SolveTe, PhaseId::kP6Rulegen}));
  EXPECT_EQ(s.result().pr.routing.paths.count({3, 4}), 1u);
}

TEST(Session, RepeatedFullCompileYieldsEmptyDelta) {
  // Deterministic compilation makes the second deployment bitwise equal to
  // the first, so the diff reports every switch unchanged.
  Topology topo = make_figure2_campus();
  Session s(topo, gravity_traffic(topo, 20.0, 6));
  s.full_compile(tunnel_program("rep1"));
  EventResult again = s.full_compile(tunnel_program("rep1"));
  EXPECT_EQ(again.delta.programs_touched(), 0u);
  EXPECT_EQ(again.delta.unchanged.size(), 12u);
}

// ---- live patching --------------------------------------------------------

TEST(Session, ApplyPreservesStateOnUnchangedSwitches) {
  Topology topo = make_figure2_campus();
  Session s(topo, gravity_traffic(topo, 20.0, 7));
  EventResult cold = s.full_compile(tunnel_program("live1"));
  Network net(cold.delta);

  // One suspicious DNS resolution lands in the orphan table.
  Value client = ip(10, 0, 6, 50);
  Packet pkt{{"srcip", ip(10, 0, 1, 9)}, {"dstip", client},
             {"srcport", 53}, {"dns.rdata", ip(10, 0, 2, 1)}, {"inport", 1}};
  net.inject(1, pkt);
  StateVarId orphan = state_var_id("live1.orphan");
  int owner = cold.delta.placement.at(orphan);
  ASSERT_GE(owner, 0);
  EXPECT_EQ(net.switch_at(owner).state().get(
                orphan, {client, ip(10, 0, 2, 1)}),
            kTrue);

  // A traffic shift changes no program: patching must keep the state.
  EventResult te = s.set_traffic(gravity_traffic(topo, 20.0, 77));
  net.apply(te.delta);
  EXPECT_EQ(net.switch_at(owner).state().get(
                orphan, {client, ip(10, 0, 2, 1)}),
            kTrue);

  // Failing the owner loses the state with the switch (§7.3).
  if (s.topology().port_switch(1) != owner) {
    EventResult fail = s.fail_switch(owner);
    net.apply(fail.delta);
    Store merged = net.merged_state();
    EXPECT_EQ(merged.get(orphan, {client, ip(10, 0, 2, 1)}), 0);
  }
}

// ---- delta correctness over the corpus ------------------------------------

// The 11-policy corpus (the builder twins of policies/*.snap).
std::vector<std::pair<std::string, std::function<PolPtr(std::string)>>>
corpus() {
  return {
      {"dns_tunnel_detect",
       [](std::string p) {
         return apps::dns_tunnel_detect(p, "10.0.6.0/24", 2);
       }},
      {"stateful_firewall",
       [](std::string p) {
         return apps::stateful_firewall(p, "10.0.6.0/24");
       }},
      {"heavy_hitter",
       [](std::string p) { return apps::heavy_hitter(p, 2); }},
      {"super_spreader",
       [](std::string p) { return apps::super_spreader(p, 2); }},
      {"dns_amplification",
       [](std::string p) { return apps::dns_amplification(p); }},
      {"udp_flood", [](std::string p) { return apps::udp_flood(p, 2); }},
      {"ftp_monitoring",
       [](std::string p) { return apps::ftp_monitoring(p); }},
      {"selective_dropping",
       [](std::string p) { return apps::selective_packet_dropping(p); }},
      {"many_ip_domains",
       [](std::string p) { return apps::many_ip_domains(p, 2); }},
      {"sidejacking",
       [](std::string p) { return apps::sidejack_detect(p, "10.0.6.10/32"); }},
      {"spam_detection",
       [](std::string p) { return apps::spam_detect(p, 2); }},
  };
}

// A probe trace across the campus OBS ports over the fields the corpus
// policies touch.
std::vector<std::pair<PortId, Packet>> probe_trace(std::uint64_t seed,
                                                   int n) {
  Rng rng(seed);
  std::vector<std::pair<PortId, Packet>> out;
  for (int i = 0; i < n; ++i) {
    PortId in = static_cast<PortId>(rng.uniform(1, 6));
    Packet p;
    p.set("inport", in);
    p.set("srcip", ip(10, 0, static_cast<std::uint32_t>(rng.uniform(1, 6)),
                      static_cast<std::uint32_t>(rng.uniform(1, 3))));
    p.set("dstip", ip(10, 0, static_cast<std::uint32_t>(rng.uniform(1, 6)),
                      static_cast<std::uint32_t>(rng.uniform(1, 3))));
    p.set("srcport", rng.bernoulli(0.4) ? 53 : rng.uniform(20, 25));
    p.set("dstport", rng.bernoulli(0.4) ? 53 : rng.uniform(20, 25));
    p.set("proto", rng.bernoulli(0.5) ? 17 : 6);
    p.set("tcp.flags", std::vector<Value>{1, 2, 16}[rng.uniform(0, 2)]);
    p.set("dns.rdata", rng.uniform(0, 3));
    p.set("dns.qname", rng.uniform(0, 2));
    p.set("ftp.PORT", rng.uniform(1000, 1002));
    p.set("sid", rng.uniform(0, 2));
    p.set("http.user-agent", rng.uniform(0, 1));
    p.set("smtp.MTA", rng.uniform(0, 2));
    out.emplace_back(in, std::move(p));
  }
  return out;
}

// The patched live network must be indistinguishable from a cold-start
// deployment built fresh from the session's artifacts: seed the cold
// network with the live state (per the current placement) and replay a
// probe trace through both in lock step.
void expect_equivalent_to_cold_start(Network& live, Session& s,
                                     std::uint64_t seed,
                                     const std::string& label) {
  const CompileResult& r = s.result();
  Network cold(s.topology(), *r.store, r.root, r.pr.placement, r.pr.routing,
               r.order);
  for (const auto& [var, sw] : r.pr.placement.switch_of) {
    cold.switch_at(sw).state().set_table(
        var, live.switch_at(sw).state().table(var));
  }
  for (const auto& [in, pkt] : probe_trace(seed, 25)) {
    auto dl = live.inject(in, pkt);
    auto dc = cold.inject(in, pkt);
    ASSERT_EQ(dl.size(), dc.size()) << label << " on " << pkt.to_string();
    for (std::size_t i = 0; i < dl.size(); ++i) {
      EXPECT_EQ(dl[i].outport, dc[i].outport) << label;
      EXPECT_TRUE(dl[i].packet == dc[i].packet) << label;
    }
    ASSERT_TRUE(live.merged_state() == cold.merged_state())
        << label << ": state digests diverged on " << pkt.to_string();
  }
}

class DeltaCorpus : public ::testing::TestWithParam<int> {};

TEST_P(DeltaCorpus, PatchedNetworkMatchesColdStartAfterEveryEvent) {
  const auto c = corpus()[static_cast<std::size_t>(GetParam())];
  Topology topo = make_figure2_campus();
  auto egress = apps::assign_egress(campus_subnets());
  Session s(topo, gravity_traffic(topo, 20.0, 11));

  EventResult ev = s.full_compile(c.second("dc1." + c.first) >> egress);
  Network live(ev.delta);
  expect_equivalent_to_cold_start(live, s, 100, c.first + "/cold");

  ev = s.set_traffic(gravity_traffic(topo, 20.0, 12));
  live.apply(ev.delta);
  expect_equivalent_to_cold_start(live, s, 200, c.first + "/traffic");

  ev = s.set_policy(c.second("dc2." + c.first) >> egress);
  live.apply(ev.delta);
  expect_equivalent_to_cold_start(live, s, 300, c.first + "/policy");

  ev = s.fail_switch(6);  // core switch; campus mesh stays connected
  live.apply(ev.delta);
  expect_equivalent_to_cold_start(live, s, 400, c.first + "/fail");

  ev = s.restore_switch(6);
  live.apply(ev.delta);
  expect_equivalent_to_cold_start(live, s, 500, c.first + "/restore");
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, DeltaCorpus, ::testing::Range(0, 11),
                         [](const auto& info) {
                           return corpus()[info.param].first;
                         });

}  // namespace
}  // namespace snap
