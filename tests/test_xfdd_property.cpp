// Property-based testing: for randomly generated SNAP programs, packets and
// stores, the xFDD translation must agree with the Appendix-A eval oracle on
// both output packets and the final store. Programs the compiler rejects
// (races) are skipped; programs it accepts must never make eval race.
#include <gtest/gtest.h>

#include "lang/eval.h"
#include "lang/printer.h"
#include "util/rng.h"
#include "util/status.h"
#include "xfdd/compose.h"
#include "xfdd/engine.h"
#include "xfdd/xfdd.h"

namespace snap {
namespace {

using namespace snap::dsl;

// A small universe keeps collision probability high (interesting cases).
const char* kFields[] = {"pa", "pb", "pc"};
const char* kVars[] = {"va", "vb"};
constexpr Value kMaxVal = 2;

Expr random_index(Rng& rng) {
  Expr e;
  int n = static_cast<int>(rng.uniform(1, 2));
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.6)) {
      e.append_field(field_id(kFields[rng.uniform(0, 2)]));
    } else {
      e.append_value(rng.uniform(0, kMaxVal));
    }
  }
  return e;
}

Expr random_scalar(Rng& rng) {
  if (rng.bernoulli(0.5)) return Expr::of_field(field_id(kFields[rng.uniform(0, 2)]));
  return Expr::of_value(rng.uniform(0, kMaxVal));
}

PredPtr random_pred(Rng& rng, int depth) {
  if (depth <= 0 || rng.bernoulli(0.4)) {
    switch (rng.uniform(0, 3)) {
      case 0:
        return id();
      case 1:
        return test(kFields[rng.uniform(0, 2)], rng.uniform(0, kMaxVal));
      case 2:
        return stest(kVars[rng.uniform(0, 1)], random_index(rng),
                     random_scalar(rng));
      default:
        return drop();
    }
  }
  switch (rng.uniform(0, 2)) {
    case 0:
      return land(random_pred(rng, depth - 1), random_pred(rng, depth - 1));
    case 1:
      return lor(random_pred(rng, depth - 1), random_pred(rng, depth - 1));
    default:
      return lnot(random_pred(rng, depth - 1));
  }
}

PolPtr random_pol(Rng& rng, int depth) {
  if (depth <= 0 || rng.bernoulli(0.3)) {
    switch (rng.uniform(0, 4)) {
      case 0:
        return filter(random_pred(rng, 1));
      case 1:
        return mod(kFields[rng.uniform(0, 2)], rng.uniform(0, kMaxVal));
      case 2:
        return sset(kVars[rng.uniform(0, 1)], random_index(rng),
                    random_scalar(rng));
      case 3:
        return sinc(kVars[rng.uniform(0, 1)], random_index(rng));
      default:
        return sdec(kVars[rng.uniform(0, 1)], random_index(rng));
    }
  }
  switch (rng.uniform(0, 3)) {
    case 0:
      return seq(random_pol(rng, depth - 1), random_pol(rng, depth - 1));
    case 1:
      return par(random_pol(rng, depth - 1), random_pol(rng, depth - 1));
    case 2:
      return ite(random_pred(rng, depth - 1), random_pol(rng, depth - 1),
                 random_pol(rng, depth - 1));
    default:
      return atomic(random_pol(rng, depth - 1));
  }
}

// Packets always carry every field of the universe so state expressions are
// evaluable (the oracle throws on absent fields, by design).
Packet random_packet(Rng& rng) {
  Packet p;
  for (const char* f : kFields) p.set(f, rng.uniform(0, kMaxVal));
  return p;
}

Store random_store(Rng& rng) {
  Store st;
  for (const char* v : kVars) {
    int entries = static_cast<int>(rng.uniform(0, 4));
    for (int i = 0; i < entries; ++i) {
      ValueVec index;
      int dims = static_cast<int>(rng.uniform(1, 2));
      for (int d = 0; d < dims; ++d) index.push_back(rng.uniform(0, kMaxVal));
      st.set(state_var_id(v), index, rng.uniform(0, kMaxVal));
    }
  }
  return st;
}

struct PropertyStats {
  int compiled = 0;
  int rejected = 0;
  int checked = 0;
};

class XfddPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XfddPropertyTest, XfddAgreesWithEvalOracle) {
  Rng rng(GetParam());
  PropertyStats stats;
  for (int iter = 0; iter < 120; ++iter) {
    PolPtr p = random_pol(rng, static_cast<int>(rng.uniform(1, 4)));
    XfddStore s;
    TestOrder order;
    XfddId d;
    try {
      d = to_xfdd(s, order, p);
    } catch (const CompileError&) {
      ++stats.rejected;  // racy program: correctly rejected, skip
      continue;
    }
    ++stats.compiled;
    for (int probe = 0; probe < 6; ++probe) {
      Packet pkt = random_packet(rng);
      Store st = random_store(rng);
      EvalResult r_eval;
      try {
        r_eval = eval(p, st, pkt);
      } catch (const CompileError& e) {
        // The compiler accepted this program, so the oracle must too.
        ADD_FAILURE() << "oracle raced on accepted program: " << e.what();
        break;
      }
      EvalResult r_xfdd = eval_xfdd(s, d, st, pkt);
      ASSERT_EQ(r_eval.packets, r_xfdd.packets)
          << "packet disagreement, seed=" << GetParam() << " iter=" << iter
          << "\nprogram:\n" << snap::to_string(p) << "\npacket: "
          << pkt.to_string() << "\nstore:\n" << st.to_string() << "\n"
          << s.to_string(d);
      ASSERT_TRUE(r_eval.store == r_xfdd.store)
          << "store disagreement, seed=" << GetParam() << " iter=" << iter
          << "\nprogram:\n" << snap::to_string(p) << "\npacket: "
          << pkt.to_string() << "\ninput store:\n" << st.to_string()
          << "\neval:\n" << r_eval.store.to_string() << "xfdd:\n"
          << r_xfdd.store.to_string() << s.to_string(d);
      ++stats.checked;
    }
  }
  // The generator must produce a healthy mix of accepted and rejected
  // programs for the test to be meaningful.
  EXPECT_GT(stats.compiled, 20);
  EXPECT_GT(stats.checked, 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XfddPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---- engine differential: memoized == cache-disabled, byte for byte -------

std::string canonical_digest(const XfddStore& s, XfddId root) {
  XfddStore canon;
  XfddId r = xfdd_import(canon, s, root);
  return std::to_string(r) + "\n" + canon.to_string(r);
}

// The paper's well-formedness: along every root-to-leaf path tests strictly
// increase in the global order, and no test's outcome is already implied by
// (or contradicts) its ancestors' outcomes.
void check_well_formed(const XfddStore& s, XfddId d, const TestOrder& order,
                       const Context& ctx, const char* what) {
  if (s.is_leaf(d)) return;
  const BranchNode& b = s.branch_node(d);
  ASSERT_FALSE(ctx.implies(b.test).has_value())
      << what << ": test '" << to_string(b.test)
      << "' is decided by its ancestors\n" << s.to_string(d);
  for (XfddId child : {b.hi, b.lo}) {
    if (!s.is_leaf(child)) {
      ASSERT_TRUE(order.before(b.test, s.branch_node(child).test))
          << what << ": child test '"
          << to_string(s.branch_node(child).test)
          << "' not strictly after parent '" << to_string(b.test) << "'";
    }
  }
  check_well_formed(s, b.hi, order, ctx.with(b.test, true), what);
  check_well_formed(s, b.lo, order, ctx.with(b.test, false), what);
}

TEST_P(XfddPropertyTest, MemoizedNaiveAndUnprunedEnginesAgree) {
  Rng rng(GetParam() * 7919 + 17);
  const XfddEngineOptions kConfigs[] = {
      {.memoize = true, .prune_contexts = true},    // the default engine
      {.memoize = false, .prune_contexts = true},   // naive (ablation path)
      {.memoize = true, .prune_contexts = false},   // full contexts
      {.memoize = false, .prune_contexts = false},  // the PR-2 baseline
  };
  int compared = 0;
  for (int iter = 0; iter < 80; ++iter) {
    PolPtr p = random_pol(rng, static_cast<int>(rng.uniform(1, 4)));
    TestOrder order;
    std::vector<std::unique_ptr<XfddEngine>> engines;
    std::vector<XfddId> roots;
    bool rejected = false;
    for (std::size_t i = 0; i < 4; ++i) {
      auto e = std::make_unique<XfddEngine>(order, kConfigs[i]);
      try {
        roots.push_back(e->policy(p));
      } catch (const CompileError&) {
        // Deterministic recursions must reject identically: a cache can
        // only replay results of subproblems that previously *succeeded*.
        EXPECT_TRUE(i == 0 || rejected)
            << "config " << i << " accepted what config 0 rejected:\n"
            << snap::to_string(p);
        rejected = true;
        continue;
      }
      EXPECT_FALSE(rejected)
          << "config " << i << " rejected what earlier configs accepted:\n"
          << snap::to_string(p);
      engines.push_back(std::move(e));
    }
    if (rejected) continue;
    std::string base =
        canonical_digest(engines[0]->store(), roots[0]);
    for (std::size_t i = 1; i < engines.size(); ++i) {
      ASSERT_EQ(canonical_digest(engines[i]->store(), roots[i]), base)
          << "config " << i << " diverged, seed=" << GetParam()
          << " iter=" << iter << "\nprogram:\n" << snap::to_string(p);
    }
    check_well_formed(engines[0]->store(), roots[0], order, Context{},
                      "memoized engine output");
    // The diagrams are structurally identical; spot-check behavior too.
    for (int probe = 0; probe < 4; ++probe) {
      Packet pkt = random_packet(rng);
      Store st = random_store(rng);
      EvalResult a = eval_xfdd(engines[0]->store(), roots[0], st, pkt);
      EvalResult b = eval_xfdd(engines[1]->store(), roots[1], st, pkt);
      ASSERT_EQ(a.packets, b.packets);
      ASSERT_TRUE(a.store == b.store);
    }
    ++compared;
  }
  EXPECT_GT(compared, 20);
}

// ---- explicit ⊖ / |t edge cases --------------------------------------------

TEST(XfddEdgeCases, NegOnPredicateLeaves) {
  XfddStore s;
  EXPECT_EQ(xfdd_neg(s, s.id_leaf()), s.drop_leaf());
  EXPECT_EQ(xfdd_neg(s, s.drop_leaf()), s.id_leaf());
  XfddId action = s.leaf(ActionSet::of({ActionSeq::of(
      {ActMod{field_id("nf"), 1}})}));
  EXPECT_THROW(xfdd_neg(s, action), CompileError);
}

TEST(XfddEdgeCases, NegDeepChainIsAnInvolution) {
  using namespace snap::dsl;
  TestOrder order;
  XfddStore s;
  PredPtr chain;
  for (int i = 0; i < 24; ++i) {
    PredPtr t = test("cf" + std::to_string(i), 1);
    chain = chain ? land(chain, t) : t;
  }
  XfddId d = pred_to_xfdd(s, order, chain);
  XfddId nd = xfdd_neg(s, d);
  EXPECT_NE(nd, d);
  EXPECT_EQ(xfdd_neg(s, nd), d);  // hash-consing makes ⊖⊖ the identity
  EXPECT_EQ(s.reachable_size(nd), s.reachable_size(d));
}

TEST(XfddEdgeCases, RestrictOnLeavesGraftsTheTest) {
  TestOrder order;
  XfddStore s;
  snap::Test t = TestFV{field_id("rf"), 3, kExactMatch};
  EXPECT_EQ(xfdd_restrict(s, order, s.id_leaf(), t, true),
            s.branch(t, s.id_leaf(), s.drop_leaf()));
  EXPECT_EQ(xfdd_restrict(s, order, s.id_leaf(), t, false),
            s.branch(t, s.drop_leaf(), s.id_leaf()));
  // Restricting {drop} is {drop} on both sides of the graft; the branch
  // constructor collapses (t ? drop : drop).
  EXPECT_EQ(xfdd_restrict(s, order, s.drop_leaf(), t, true), s.drop_leaf());
}

TEST(XfddEdgeCases, RestrictDeepChainAgreesWithEval) {
  using namespace snap::dsl;
  TestOrder order;
  XfddStore s;
  PredPtr chain;
  for (int i = 0; i < 6; ++i) {
    PredPtr t = test("rc" + std::to_string(i), 1);
    chain = chain ? land(chain, t) : t;
  }
  XfddId d = pred_to_xfdd(s, order, chain);
  // Graft each chain test and a fresh one, both polarities, and check the
  // restricted diagram behaves as (t == polarity) ? d : drop.
  std::vector<snap::Test> grafts;
  for (int i = 0; i < 6; ++i) {
    grafts.push_back(TestFV{field_id("rc" + std::to_string(i)), 1,
                            kExactMatch});
  }
  grafts.push_back(TestFV{field_id("zz_new"), 1, kExactMatch});
  Rng rng(99);
  for (const snap::Test& t : grafts) {
    for (bool pol : {true, false}) {
      XfddId r = xfdd_restrict(s, order, d, t, pol);
      for (int probe = 0; probe < 16; ++probe) {
        Packet pkt;
        for (int i = 0; i < 6; ++i) {
          pkt.set("rc" + std::to_string(i),
                  static_cast<Value>(rng.uniform(0, 1)));
        }
        pkt.set("zz_new", static_cast<Value>(rng.uniform(0, 1)));
        Store st;
        EvalResult want = eval_test(t, st, pkt) == pol
                              ? eval_xfdd(s, d, st, pkt)
                              : eval_xfdd(s, s.drop_leaf(), st, pkt);
        EvalResult got = eval_xfdd(s, r, st, pkt);
        ASSERT_EQ(want.packets, got.packets)
            << "graft " << to_string(t) << " pol=" << pol;
      }
    }
  }
}

}  // namespace
}  // namespace snap
