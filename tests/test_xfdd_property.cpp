// Property-based testing: for randomly generated SNAP programs, packets and
// stores, the xFDD translation must agree with the Appendix-A eval oracle on
// both output packets and the final store. Programs the compiler rejects
// (races) are skipped; programs it accepts must never make eval race.
#include <gtest/gtest.h>

#include "lang/eval.h"
#include "lang/printer.h"
#include "util/rng.h"
#include "util/status.h"
#include "xfdd/compose.h"
#include "xfdd/xfdd.h"

namespace snap {
namespace {

using namespace snap::dsl;

// A small universe keeps collision probability high (interesting cases).
const char* kFields[] = {"pa", "pb", "pc"};
const char* kVars[] = {"va", "vb"};
constexpr Value kMaxVal = 2;

Expr random_index(Rng& rng) {
  Expr e;
  int n = static_cast<int>(rng.uniform(1, 2));
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.6)) {
      e.append_field(field_id(kFields[rng.uniform(0, 2)]));
    } else {
      e.append_value(rng.uniform(0, kMaxVal));
    }
  }
  return e;
}

Expr random_scalar(Rng& rng) {
  if (rng.bernoulli(0.5)) return Expr::of_field(field_id(kFields[rng.uniform(0, 2)]));
  return Expr::of_value(rng.uniform(0, kMaxVal));
}

PredPtr random_pred(Rng& rng, int depth) {
  if (depth <= 0 || rng.bernoulli(0.4)) {
    switch (rng.uniform(0, 3)) {
      case 0:
        return id();
      case 1:
        return test(kFields[rng.uniform(0, 2)], rng.uniform(0, kMaxVal));
      case 2:
        return stest(kVars[rng.uniform(0, 1)], random_index(rng),
                     random_scalar(rng));
      default:
        return drop();
    }
  }
  switch (rng.uniform(0, 2)) {
    case 0:
      return land(random_pred(rng, depth - 1), random_pred(rng, depth - 1));
    case 1:
      return lor(random_pred(rng, depth - 1), random_pred(rng, depth - 1));
    default:
      return lnot(random_pred(rng, depth - 1));
  }
}

PolPtr random_pol(Rng& rng, int depth) {
  if (depth <= 0 || rng.bernoulli(0.3)) {
    switch (rng.uniform(0, 4)) {
      case 0:
        return filter(random_pred(rng, 1));
      case 1:
        return mod(kFields[rng.uniform(0, 2)], rng.uniform(0, kMaxVal));
      case 2:
        return sset(kVars[rng.uniform(0, 1)], random_index(rng),
                    random_scalar(rng));
      case 3:
        return sinc(kVars[rng.uniform(0, 1)], random_index(rng));
      default:
        return sdec(kVars[rng.uniform(0, 1)], random_index(rng));
    }
  }
  switch (rng.uniform(0, 3)) {
    case 0:
      return seq(random_pol(rng, depth - 1), random_pol(rng, depth - 1));
    case 1:
      return par(random_pol(rng, depth - 1), random_pol(rng, depth - 1));
    case 2:
      return ite(random_pred(rng, depth - 1), random_pol(rng, depth - 1),
                 random_pol(rng, depth - 1));
    default:
      return atomic(random_pol(rng, depth - 1));
  }
}

// Packets always carry every field of the universe so state expressions are
// evaluable (the oracle throws on absent fields, by design).
Packet random_packet(Rng& rng) {
  Packet p;
  for (const char* f : kFields) p.set(f, rng.uniform(0, kMaxVal));
  return p;
}

Store random_store(Rng& rng) {
  Store st;
  for (const char* v : kVars) {
    int entries = static_cast<int>(rng.uniform(0, 4));
    for (int i = 0; i < entries; ++i) {
      ValueVec index;
      int dims = static_cast<int>(rng.uniform(1, 2));
      for (int d = 0; d < dims; ++d) index.push_back(rng.uniform(0, kMaxVal));
      st.set(state_var_id(v), index, rng.uniform(0, kMaxVal));
    }
  }
  return st;
}

struct PropertyStats {
  int compiled = 0;
  int rejected = 0;
  int checked = 0;
};

class XfddPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XfddPropertyTest, XfddAgreesWithEvalOracle) {
  Rng rng(GetParam());
  PropertyStats stats;
  for (int iter = 0; iter < 120; ++iter) {
    PolPtr p = random_pol(rng, static_cast<int>(rng.uniform(1, 4)));
    XfddStore s;
    TestOrder order;
    XfddId d;
    try {
      d = to_xfdd(s, order, p);
    } catch (const CompileError&) {
      ++stats.rejected;  // racy program: correctly rejected, skip
      continue;
    }
    ++stats.compiled;
    for (int probe = 0; probe < 6; ++probe) {
      Packet pkt = random_packet(rng);
      Store st = random_store(rng);
      EvalResult r_eval;
      try {
        r_eval = eval(p, st, pkt);
      } catch (const CompileError& e) {
        // The compiler accepted this program, so the oracle must too.
        ADD_FAILURE() << "oracle raced on accepted program: " << e.what();
        break;
      }
      EvalResult r_xfdd = eval_xfdd(s, d, st, pkt);
      ASSERT_EQ(r_eval.packets, r_xfdd.packets)
          << "packet disagreement, seed=" << GetParam() << " iter=" << iter
          << "\nprogram:\n" << snap::to_string(p) << "\npacket: "
          << pkt.to_string() << "\nstore:\n" << st.to_string() << "\n"
          << s.to_string(d);
      ASSERT_TRUE(r_eval.store == r_xfdd.store)
          << "store disagreement, seed=" << GetParam() << " iter=" << iter
          << "\nprogram:\n" << snap::to_string(p) << "\npacket: "
          << pkt.to_string() << "\ninput store:\n" << st.to_string()
          << "\neval:\n" << r_eval.store.to_string() << "xfdd:\n"
          << r_xfdd.store.to_string() << s.to_string(d);
      ++stats.checked;
    }
  }
  // The generator must produce a healthy mix of accepted and rejected
  // programs for the test to be meaningful.
  EXPECT_GT(stats.compiled, 20);
  EXPECT_GT(stats.checked, 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XfddPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace snap
