// NetASM assembly and the distributed data plane: per-switch programs,
// stuck-packet walks, distributed leaf writes, and end-to-end equivalence
// with the OBS eval oracle (including a randomized trace property test).
#include <gtest/gtest.h>

#include "analysis/depgraph.h"
#include "analysis/psmap.h"
#include "dataplane/network.h"
#include "lang/eval.h"
#include "milp/scalable.h"
#include "netasm/assembler.h"
#include "rulegen/split.h"
#include "topo/gen.h"
#include "util/rng.h"
#include "util/status.h"
#include "xfdd/compose.h"

namespace snap {
namespace {

using namespace snap::dsl;

// Compiles program -> xFDD -> placement/routing -> Network over `topo`.
struct Deployment {
  XfddStore store;
  XfddId root;
  DependencyGraph deps;
  TestOrder order;
  PacketStateMap psmap;
  PlacementAndRouting pr;
  std::unique_ptr<Network> net;

  Deployment(const PolPtr& p, const Topology& topo, const TrafficMatrix& tm)
      : deps(DependencyGraph::build(p)), order(deps.test_order()) {
    root = to_xfdd(store, order, p);
    psmap = packet_state_map(store, root, topo.ports(), order);
    pr = solve_scalable(topo, tm, psmap, deps);
    net = std::make_unique<Network>(topo, store, root, pr.placement,
                                    pr.routing, order);
  }
};

TrafficMatrix uniform_tm(const Topology& topo, double load) {
  TrafficMatrix tm;
  const auto& ports = topo.ports();
  double per = load / (ports.size() * (ports.size() - 1));
  for (PortId u : ports) {
    for (PortId v : ports) {
      if (u != v) tm.set_demand(u, v, per);
    }
  }
  return tm;
}

PolPtr two_port_egress() {
  return ite(test_cidr("dstip", "10.0.1.0/24"), mod("outport", 1),
             ite(test_cidr("dstip", "10.0.2.0/24"), mod("outport", 2),
                 filter(drop())));
}

Value ip(std::uint32_t a, std::uint32_t b, std::uint32_t c,
         std::uint32_t d) {
  return static_cast<Value>((a << 24) | (b << 16) | (c << 8) | d);
}

TEST(Netasm, ProgramHasEntriesForAllNodes) {
  XfddStore s;
  TestOrder order;
  auto p = ite(stest("na-cnt", idx("a"), lit(0)), sinc("na-cnt", idx("a")),
               filter(drop())) >>
           two_port_egress();
  XfddId d = to_xfdd(s, order, p);
  Placement pl;
  pl.switch_of[state_var_id("na-cnt")] = 0;
  netasm::Program own = netasm::assemble(s, d, pl, 0);
  netasm::Program other = netasm::assemble(s, d, pl, 1);
  EXPECT_FALSE(own.code.empty());
  // The owner resolves the state test; the other switch escapes on it.
  auto count_kind = [](const netasm::Program& pr, auto pred) {
    return std::count_if(pr.code.begin(), pr.code.end(), pred);
  };
  EXPECT_GT(count_kind(own,
                       [](const netasm::Instr& i) {
                         return std::holds_alternative<netasm::IBranchState>(
                                    i) ||
                                std::holds_alternative<netasm::IStateInc>(i);
                       }),
            0);
  EXPECT_GT(count_kind(other,
                       [](const netasm::Instr& i) {
                         return std::holds_alternative<netasm::IEscape>(i);
                       }),
            0);
  // Disassembly is printable and mentions the state variable.
  EXPECT_NE(own.disassemble().find("na-cnt"), std::string::npos);
}

TEST(Netasm, AtomicRegionsBalanced) {
  XfddStore s;
  TestOrder order;
  auto p = atomic(sset("na-x", idx("a"), lit(1)) >>
                  sset("na-y", idx("a"), lit(2))) >>
           two_port_egress();
  XfddId d = to_xfdd(s, order, p);
  Placement pl;
  pl.switch_of[state_var_id("na-x")] = 0;
  pl.switch_of[state_var_id("na-y")] = 0;
  netasm::Program prog = netasm::assemble(s, d, pl, 0);
  int depth = 0;
  for (const auto& i : prog.code) {
    if (std::holds_alternative<netasm::IAtomBegin>(i)) ++depth;
    if (std::holds_alternative<netasm::IAtomEnd>(i)) {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
}

TEST(SplitStats, StateWorkOnlyAtOwners) {
  XfddStore s;
  TestOrder order;
  auto p = ite(stest("sp-a", idx("srcip"), lit(1)), sinc("sp-b", idx("srcip")),
               filter(id())) >>
           two_port_egress();
  XfddId d = to_xfdd(s, order, p);
  Placement pl;
  pl.switch_of[state_var_id("sp-a")] = 1;
  pl.switch_of[state_var_id("sp-b")] = 2;
  auto stats = split_stats(s, d, pl, 4);
  EXPECT_GE(stats[1].state_tests, 1u);
  EXPECT_EQ(stats[2].state_tests, 0u);
  EXPECT_GT(stats[2].state_writes, 0u);
  EXPECT_EQ(stats[0].state_tests, 0u);
  EXPECT_GT(stats[0].escapes, 0u);
  EXPECT_EQ(stats[3].state_writes, 0u);
}

TEST(Dataplane, StatelessForwarding) {
  Topology topo = make_figure2_campus();
  auto p = ite(test_cidr("dstip", "10.0.1.0/24"), mod("outport", 1),
               ite(test_cidr("dstip", "10.0.6.0/24"), mod("outport", 6),
                   filter(drop())));
  Deployment dep(p, topo, uniform_tm(topo, 6.0));
  Packet pkt{{"dstip", ip(10, 0, 6, 9)}, {"srcip", ip(10, 0, 1, 4)}};
  auto out = dep.net->inject(1, pkt);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].outport, 6);
  EXPECT_EQ(out[0].packet.get("outport"), 6);
  // Dropped traffic emits nothing.
  Packet unroutable{{"dstip", ip(10, 0, 3, 9)}};
  EXPECT_TRUE(dep.net->inject(1, unroutable).empty());
}

TEST(Dataplane, StateUpdatesLandOnPlacedSwitch) {
  Topology topo = make_figure2_campus();
  auto p = sinc("dp-cnt", idx("inport")) >> two_port_egress();
  Deployment dep(p, topo, uniform_tm(topo, 6.0));
  Packet pkt{{"dstip", ip(10, 0, 1, 1)}, {"inport", 3}};
  auto out = dep.net->inject(3, pkt);
  ASSERT_EQ(out.size(), 1u);
  StateVarId cnt = state_var_id("dp-cnt");
  int owner = dep.pr.placement.at(cnt);
  EXPECT_EQ(dep.net->switch_at(owner).state().get(cnt, {3}), 1);
  // No other switch holds the variable.
  for (int swi = 0; swi < topo.num_switches(); ++swi) {
    if (swi != owner) {
      EXPECT_EQ(dep.net->switch_at(swi).state().get(cnt, {3}), 0);
    }
  }
}

TEST(Dataplane, MulticastCopies) {
  Topology topo = make_figure2_campus();
  auto p = mod("outport", 1) + mod("outport", 2);
  Deployment dep(p, topo, uniform_tm(topo, 6.0));
  Packet pkt{{"dstip", ip(10, 0, 9, 9)}};
  auto out = dep.net->inject(4, pkt);
  ASSERT_EQ(out.size(), 2u);
  std::set<PortId> ports{out[0].outport, out[1].outport};
  EXPECT_EQ(ports, (std::set<PortId>{1, 2}));
}

TEST(Dataplane, WritesOnDropPathStillApplied) {
  // UDP-flood style: count, then drop over threshold.
  Topology topo = make_figure2_campus();
  auto p = sinc("dp-udp", idx("srcip")) >>
           ite(stest("dp-udp", idx("srcip"), lit(3)), filter(drop()),
               two_port_egress());
  Deployment dep(p, topo, uniform_tm(topo, 6.0));
  Packet pkt{{"srcip", 77}, {"dstip", ip(10, 0, 1, 1)}};
  StateVarId v = state_var_id("dp-udp");
  int owner = dep.pr.placement.at(v);
  EXPECT_EQ(dep.net->inject(2, pkt).size(), 1u);
  EXPECT_EQ(dep.net->inject(2, pkt).size(), 1u);
  // Third packet hits the threshold (counter becomes 3) and is dropped.
  EXPECT_TRUE(dep.net->inject(2, pkt).empty());
  EXPECT_EQ(dep.net->switch_at(owner).state().get(v, {77}), 3);
}

// Lock-step equivalence: dataplane vs oracle over a packet trace.
void expect_trace_equivalence(const PolPtr& p, const Topology& topo,
                              const std::vector<std::pair<PortId, Packet>>&
                                  trace) {
  Deployment dep(p, topo, uniform_tm(topo, 6.0));
  Store oracle_state;
  for (const auto& [inport, pkt_in] : trace) {
    Packet pkt = pkt_in;
    pkt.set("inport", inport);
    EvalResult expected = eval(p, oracle_state, pkt);
    oracle_state = expected.store;
    auto got = dep.net->inject(inport, pkt);
    // Compare delivered packet multisets with oracle outputs that carry a
    // resolvable egress.
    std::set<Packet> got_packets;
    for (const auto& d : got) got_packets.insert(d.packet);
    std::set<Packet> want;
    for (const Packet& q : expected.packets) {
      auto op = q.get("outport");
      if (!op) continue;
      bool known = false;
      for (PortId prt : topo.ports()) known |= (prt == *op);
      if (known) want.insert(q);
    }
    ASSERT_EQ(got_packets, want);
    ASSERT_TRUE(dep.net->merged_state() == oracle_state)
        << "distributed state diverged from the oracle\n"
        << "oracle:\n" << oracle_state.to_string() << "dataplane:\n"
        << dep.net->merged_state().to_string();
  }
}

TEST(Dataplane, DnsTunnelTraceMatchesOracle) {
  Topology topo = make_figure2_campus();
  auto dns = land(test_cidr("dstip", "10.0.6.0/24"), test("srcport", 53));
  auto prog =
      ite(dns,
          sset("dp-orphan", idx("dstip", "dns.rdata"), lit(kTrue)) >>
              (sinc("dp-susp", idx("dstip")) >>
               ite(stest("dp-susp", idx("dstip"), lit(2)),
                   sset("dp-black", idx("dstip"), lit(kTrue)), filter(id()))),
          ite(land(test_cidr("srcip", "10.0.6.0/24"),
                   stest("dp-orphan", idx("srcip", "dstip"), lit(kTrue))),
              sset("dp-orphan", idx("srcip", "dstip"), lit(kFalse)) >>
                  sdec("dp-susp", idx("srcip")),
              filter(id()))) >>
      ite(test_cidr("dstip", "10.0.6.0/24"), mod("outport", 6),
          ite(test_cidr("dstip", "10.0.1.0/24"), mod("outport", 1),
              filter(drop())));
  Value client = ip(10, 0, 6, 50);
  Value server = ip(10, 0, 1, 34);
  std::vector<std::pair<PortId, Packet>> trace{
      {1, Packet{{"dstip", client}, {"srcport", 53}, {"dns.rdata", server},
                 {"srcip", 9}}},
      {6, Packet{{"srcip", client}, {"dstip", server}, {"srcport", 900}}},
      {1, Packet{{"dstip", client}, {"srcport", 53}, {"dns.rdata", server},
                 {"srcip", 9}}},
      {1, Packet{{"dstip", client}, {"srcport", 53},
                 {"dns.rdata", server + 1}, {"srcip", 9}}},
      {2, Packet{{"srcip", 5}, {"dstip", ip(10, 0, 1, 7)}, {"srcport", 80}}},
  };
  expect_trace_equivalence(prog, topo, trace);
}

TEST(Dataplane, RandomTraceEquivalenceProperty) {
  // Random stateful programs + random traces on the Figure-2 campus; the
  // distributed execution must match the oracle exactly.
  Topology topo = make_figure2_campus();
  Rng rng(2024);
  const char* fields[] = {"rk-a", "rk-b"};
  for (int trial = 0; trial < 25; ++trial) {
    // Random guarded counter program with 1-2 state variables.
    std::string v1 = "rt-v" + std::to_string(trial) + "a";
    std::string v2 = "rt-v" + std::to_string(trial) + "b";
    PredPtr guard = test(fields[rng.uniform(0, 1)], rng.uniform(0, 2));
    PolPtr stateful =
        ite(guard, sinc(v1, idx(fields[rng.uniform(0, 1)])),
            ite(stest(v1, idx(fields[0]), lit(rng.uniform(0, 2))),
                sset(v2, idx(fields[1]), lit(rng.uniform(0, 3))),
                sdec(v1, idx(fields[1]))));
    PolPtr prog = stateful >> ite(test(fields[0], 0), mod("outport", 1),
                                  ite(test(fields[0], 1), mod("outport", 2),
                                      mod("outport", 6)));
    std::vector<std::pair<PortId, Packet>> trace;
    for (int i = 0; i < 12; ++i) {
      Packet pkt;
      pkt.set(fields[0], rng.uniform(0, 2));
      pkt.set(fields[1], rng.uniform(0, 2));
      trace.emplace_back(static_cast<PortId>(rng.uniform(1, 6)), pkt);
    }
    expect_trace_equivalence(prog, topo, trace);
  }
}

TEST(Dataplane, HopsFollowOptimizerPaths) {
  // A stateless flow between two ports must use exactly the optimizer's
  // path length.
  Topology topo = make_figure2_campus();
  auto p = two_port_egress();
  Deployment dep(p, topo, uniform_tm(topo, 6.0));
  auto path = dep.pr.routing.paths.at({4, 1});
  Packet pkt{{"dstip", ip(10, 0, 1, 2)}};
  std::uint64_t before = dep.net->total_hops();
  dep.net->inject(4, pkt);
  EXPECT_EQ(dep.net->total_hops() - before, path.size() - 1);
}

}  // namespace
}  // namespace snap
