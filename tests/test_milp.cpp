// The LP/MILP substrate: simplex on classic instances, branch & bound on
// small integer programs, degenerate/infeasible/unbounded cases.
#include <gtest/gtest.h>

#include "milp/bnb.h"
#include "milp/simplex.h"

namespace snap {
namespace {

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y st x<=4, 2y<=12, 3x+2y<=18  (min -3x -5y), opt at (2,6)=36.
  LpModel m;
  int x = m.add_var(0, kLpInf, -3);
  int y = m.add_var(0, kLpInf, -5);
  m.add_row({{x, 1}}, -kLpInf, 4);
  m.add_row({{y, 2}}, -kLpInf, 12);
  m.add_row({{x, 3}, {y, 2}}, -kLpInf, 18);
  auto s = solve_lp(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-6);
  EXPECT_NEAR(s.x[x], 2.0, 1e-6);
  EXPECT_NEAR(s.x[y], 6.0, 1e-6);
}

TEST(Simplex, EqualityAndGeqRows) {
  // min x + 2y st x + y = 10, x >= 3, y >= 2 -> x=8, y=2, obj 12.
  LpModel m;
  int x = m.add_var(0, kLpInf, 1);
  int y = m.add_var(0, kLpInf, 2);
  m.add_row({{x, 1}, {y, 1}}, 10, 10);
  m.add_row({{x, 1}}, 3, kLpInf);
  m.add_row({{y, 1}}, 2, kLpInf);
  auto s = solve_lp(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-6);
  EXPECT_NEAR(s.x[x], 8.0, 1e-6);
}

TEST(Simplex, VariableBoundsHandled) {
  // min -x - y with x in [1, 3], y in [2, 5], x + y <= 6 -> (3, 3) obj -6
  // or (1,5)... -x-y so maximize sum: best sum = 6 -> obj -6.
  LpModel m;
  int x = m.add_var(1, 3, -1);
  int y = m.add_var(2, 5, -1);
  m.add_row({{x, 1}, {y, 1}}, -kLpInf, 6);
  auto s = solve_lp(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -6.0, 1e-6);
  EXPECT_GE(s.x[x], 1 - 1e-9);
  EXPECT_LE(s.x[y], 5 + 1e-9);
}

TEST(Simplex, NegativeRhsRows) {
  // min x st x >= -2 (trivially x=0), plus -x <= -1 i.e. x >= 1.
  LpModel m;
  int x = m.add_var(0, kLpInf, 1);
  m.add_row({{x, -1}}, -kLpInf, -1);
  auto s = solve_lp(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 1.0, 1e-6);
}

TEST(Simplex, InfeasibleDetected) {
  LpModel m;
  int x = m.add_var(0, kLpInf, 1);
  m.add_row({{x, 1}}, -kLpInf, 1);
  m.add_row({{x, 1}}, 3, kLpInf);
  auto s = solve_lp(m);
  EXPECT_EQ(s.status, LpStatus::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  LpModel m;
  int x = m.add_var(0, kLpInf, -1);
  m.add_row({{x, -1}}, -kLpInf, 0);  // -x <= 0, no upper bound
  auto s = solve_lp(m);
  EXPECT_EQ(s.status, LpStatus::kUnbounded);
}

TEST(Simplex, FixedVariables) {
  LpModel m;
  int x = m.add_var(2, 2, 1);
  int y = m.add_var(0, kLpInf, 1);
  m.add_row({{x, 1}, {y, 1}}, 5, kLpInf);
  auto s = solve_lp(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-9);
  EXPECT_NEAR(s.x[y], 3.0, 1e-6);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through one vertex.
  LpModel m;
  int x = m.add_var(0, kLpInf, -1);
  int y = m.add_var(0, kLpInf, -1);
  for (int k = 1; k <= 6; ++k) {
    m.add_row({{x, static_cast<double>(k)}, {y, static_cast<double>(k)}},
              -kLpInf, 10.0 * k);
  }
  auto s = solve_lp(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[x] + s.x[y], 10.0, 1e-6);
}

TEST(Simplex, MinCostFlowAsLp) {
  // Two paths of capacity 5 and 10; route 12 units, cheap path first.
  // Vars: f1 (cost 1), f2 (cost 3).
  LpModel m;
  int f1 = m.add_var(0, 5, 1);
  int f2 = m.add_var(0, 10, 3);
  m.add_row({{f1, 1}, {f2, 1}}, 12, 12);
  auto s = solve_lp(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[f1], 5.0, 1e-6);
  EXPECT_NEAR(s.x[f2], 7.0, 1e-6);
  EXPECT_NEAR(s.objective, 26.0, 1e-6);
}

// ------------------------------------------------------------ branch & bound

TEST(Bnb, KnapsackSmall) {
  // max 8a + 11b + 6c + 4d st 5a+7b+4c+3d <= 14, binary -> opt 21 (b,c,d).
  LpModel m;
  int a = m.add_var(0, 1, -8, true);
  int b = m.add_var(0, 1, -11, true);
  int c = m.add_var(0, 1, -6, true);
  int d = m.add_var(0, 1, -4, true);
  m.add_row({{a, 5}, {b, 7}, {c, 4}, {d, 3}}, -kLpInf, 14);
  auto s = solve_milp(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -21.0, 1e-6);
  EXPECT_NEAR(s.x[b], 1.0, 1e-9);
  EXPECT_NEAR(s.x[c], 1.0, 1e-9);
  EXPECT_NEAR(s.x[d], 1.0, 1e-9);
}

TEST(Bnb, IntegerRoundingMatters) {
  // min y st 2y >= 3, y integer -> y = 2 (LP gives 1.5).
  LpModel m;
  int y = m.add_var(0, kLpInf, 1, true);
  m.add_row({{y, 2}}, 3, kLpInf);
  auto s = solve_milp(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[y], 2.0, 1e-9);
}

TEST(Bnb, MixedIntegerFacilityChoice) {
  // Open one of two facilities (binary), serve demand 1 through continuous
  // flow bounded by the open facility: classic linking constraints.
  LpModel m;
  int open1 = m.add_var(0, 1, 5, true);
  int open2 = m.add_var(0, 1, 3, true);
  int f1 = m.add_var(0, 1, 1);
  int f2 = m.add_var(0, 1, 2);
  m.add_row({{f1, 1}, {f2, 1}}, 1, 1);
  m.add_row({{f1, 1}, {open1, -1}}, -kLpInf, 0);
  m.add_row({{f2, 1}, {open2, -1}}, -kLpInf, 0);
  auto s = solve_milp(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  // Facility 2: cost 3 + flow cost 2 = 5; facility 1: 5 + 1 = 6.
  EXPECT_NEAR(s.objective, 5.0, 1e-6);
  EXPECT_NEAR(s.x[open2], 1.0, 1e-9);
}

TEST(Bnb, InfeasibleIntegerProgram) {
  // 0.4 <= x <= 0.6 with x integer.
  LpModel m;
  int x = m.add_var(0, 1, 1, true);
  m.add_row({{x, 1}}, 0.4, 0.6);
  auto s = solve_milp(m);
  EXPECT_EQ(s.status, LpStatus::kInfeasible);
}

TEST(Bnb, EqualitySplitAcrossIntegers) {
  // x + y = 7, |obj| prefers x, x <= 4 -> x=4, y=3.
  LpModel m;
  int x = m.add_var(0, 4, -2, true);
  int y = m.add_var(0, kLpInf, -1, true);
  m.add_row({{x, 1}, {y, 1}}, 7, 7);
  auto s = solve_milp(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 4.0, 1e-9);
  EXPECT_NEAR(s.x[y], 3.0, 1e-9);
}

}  // namespace
}  // namespace snap
