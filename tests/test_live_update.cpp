// Live-update mode (sim::TrafficEngine::run_live): the epoch consistency
// contract and the byte-equivalence of mid-stream rule swaps against the
// quiesced reference (drain -> Network::apply -> resume).
//
// Three layers, mirroring the contract in sim/engine.h:
//   1. Single-epoch-per-packet: with record_epochs on, every program run a
//      packet performs carries the same epoch, and that epoch equals the
//      number of events at or before the packet's sequence number — in
//      deterministic AND free-running mode, across the policy corpus.
//   2. Deterministic byte-equivalence: deliveries and final merged state of
//      a live run equal the segmented serial reference, including under a
//      seeded randomized event stream (the seed prints on failure).
//   3. Regression: an apply at full ring occupancy (small window, capacity-1
//      placement forcing cross-worker walks) neither drops nor
//      double-processes packets.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <vector>

#include "apps/apps.h"
#include "compiler/session.h"
#include "dataplane/network.h"
#include "rulegen/delta.h"
#include "sim/engine.h"
#include "sim/workload.h"
#include "topo/gen.h"
#include "util/status.h"

namespace snap {
namespace {

using namespace snap::dsl;

void expect_same_deliveries(const std::vector<Network::Delivery>& a,
                            const std::vector<Network::Delivery>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].outport, b[i].outport) << "delivery " << i;
    ASSERT_TRUE(a[i].packet == b[i].packet)
        << "delivery " << i << ": " << a[i].packet.to_string() << " vs "
        << b[i].packet.to_string();
  }
}

std::vector<apps::CorpusApp> corpus(const Topology& topo) {
  return apps::evaluation_corpus("sim",
                                 apps::default_subnets(topo.ports()));
}

// The quiesced reference: replay the workload serially, draining fully at
// every event boundary and applying the delta to the idle network. This is
// the behavior run_live promises to match byte-for-byte in deterministic
// mode.
struct Reference {
  std::vector<Network::Delivery> deliveries;
  Store state;
};

Reference quiesced_replay(const RuleDelta& cold, const sim::Workload& wl,
                          const std::vector<sim::LiveEvent>& schedule) {
  Network net(cold);
  auto batch = sim::as_injection_batch(wl);
  Reference ref;
  std::size_t at = 0;
  for (const sim::LiveEvent& ev : schedule) {
    std::size_t upto = std::min(ev.at_seq, batch.size());
    for (; at < upto; ++at) {
      auto out = net.inject(batch[at].first, batch[at].second);
      ref.deliveries.insert(ref.deliveries.end(), out.begin(), out.end());
    }
    net.apply(ev.delta);
  }
  for (; at < batch.size(); ++at) {
    auto out = net.inject(batch[at].first, batch[at].second);
    ref.deliveries.insert(ref.deliveries.end(), out.begin(), out.end());
  }
  ref.state = net.merged_state();
  return ref;
}

// Builds the shared three-event schedule for a corpus app: a policy change
// to the next app in the corpus, then a core-switch failure and its
// restoration (C1..C6 of the Figure 2 campus are portless, so failing one
// never disconnects an OBS port). The session ends back on `alt`'s policy
// with all switches restored.
std::vector<sim::LiveEvent> corpus_schedule(Session& session,
                                            const apps::CorpusApp& alt,
                                            std::size_t n) {
  std::vector<sim::LiveEvent> schedule;
  schedule.push_back({n / 4, session.set_policy(alt.policy).delta,
                      "set_policy"});
  schedule.push_back({n / 2, session.fail_switch(8).delta, "fail"});
  schedule.push_back({3 * n / 4, session.restore_switch(8).delta,
                      "restore"});
  return schedule;
}

// The single-epoch-per-packet contract, plus the stronger determinism both
// modes share: a packet's epoch is exactly the number of events at or
// before its sequence number (events swap at dispatch boundaries, and
// dispatch is strict sequence order in both modes).
void check_epoch_contract(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& marks,
    const std::vector<sim::LiveEvent>& schedule, std::size_t n,
    const std::string& tag) {
  std::map<std::uint32_t, std::set<std::uint32_t>> by_seq;
  for (const auto& [seq, epoch] : marks) by_seq[seq].insert(epoch);
  ASSERT_EQ(by_seq.size(), n) << tag << ": not every packet left a mark";
  for (const auto& [seq, epochs] : by_seq) {
    ASSERT_EQ(epochs.size(), 1u)
        << tag << ": packet " << seq
        << " observed more than one policy epoch";
    std::uint32_t expect = 0;
    for (const sim::LiveEvent& ev : schedule) {
      if (ev.at_seq <= seq) ++expect;
    }
    EXPECT_EQ(*epochs.begin(), expect)
        << tag << ": packet " << seq << " ran under the wrong epoch";
  }
}

class LiveCorpus : public ::testing::TestWithParam<int> {};

TEST_P(LiveCorpus, MidStreamEventsMatchQuiescedReference) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 1);
  auto reg = corpus(topo);
  auto c = reg[static_cast<std::size_t>(GetParam())];
  auto alt = reg[static_cast<std::size_t>(GetParam() + 1) % reg.size()];

  Session session(topo, tm);
  EventResult cold = session.full_compile(c.policy);
  const std::size_t n = 400;
  sim::Workload wl = sim::WorkloadGen(topo, tm, 42).generate(
      sim::scenario_for_app(c.name), n);
  auto schedule = corpus_schedule(session, alt, n);
  Reference ref = quiesced_replay(cold.delta, wl, schedule);

  for (int workers : {1, 2, 8}) {
    for (bool det : {true, false}) {
      sim::EngineOptions opts;
      opts.workers = workers;
      opts.deterministic = det;
      opts.record_epochs = true;
      sim::TrafficEngine engine(cold.delta, opts);
      auto out = engine.run_live(wl, schedule);
      std::string tag = c.name + (det ? " det" : " free") + " w" +
                        std::to_string(workers);
      // Layer 1 — the contract both modes promise.
      ASSERT_NO_FATAL_FAILURE(
          check_epoch_contract(engine.epoch_marks(), schedule, n, tag));
      EXPECT_EQ(engine.stats().epochs, schedule.size() + 1) << tag;
      ASSERT_EQ(engine.stats().events.size(), schedule.size()) << tag;
      for (const sim::LiveEventStats& es : engine.stats().events) {
        EXPECT_GE(es.swap_seconds, 0.0) << tag << " " << es.label;
        // Every event lands mid-stream, so some packet ran on its rules.
        EXPECT_GE(es.first_packet_seconds, 0.0) << tag << " " << es.label;
      }
      // Layer 2 — byte-equivalence, deterministic mode only.
      if (det) {
        ASSERT_NO_FATAL_FAILURE(
            expect_same_deliveries(ref.deliveries, out))
            << tag;
        ASSERT_TRUE(ref.state == engine.network().merged_state())
            << tag << " state diverged\nreference:\n"
            << ref.state.to_string() << "live:\n"
            << engine.network().merged_state().to_string();
      } else {
        EXPECT_EQ(engine.stats().packets, n) << tag;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, LiveCorpus, ::testing::Range(0, 11),
                         [](const auto& info) {
                           std::string n =
                               corpus(make_figure2_campus())
                                   [static_cast<std::size_t>(info.param)]
                                       .name;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

// Seeded randomized event streams: N random Session events (policy swaps
// across the corpus, core-switch failures, restorations) at random
// sequence boundaries of a long run must leave deliveries and merged state
// byte-identical to the quiesced reference. The seed is in every failure
// message — reproduce with it directly.
TEST(LiveUpdate, RandomizedEventStreamMatchesQuiescedReference) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 1);
  auto reg = corpus(topo);
  const std::size_t n = 100000;

  for (std::uint32_t seed : {7u, 21u}) {
    std::mt19937 rng(seed);
    Session session(topo, tm);
    EventResult cold =
        session.full_compile(reg[seed % reg.size()].policy);
    sim::Workload wl = sim::WorkloadGen(topo, tm, seed).generate(
        *sim::find_scenario("mixed"), n);

    // Random boundaries, sorted; duplicates are fine (two events at one
    // boundary apply back-to-back before the packet dispatches).
    const int events = 6;
    std::vector<std::size_t> at;
    for (int i = 0; i < events; ++i) {
      at.push_back(std::uniform_int_distribution<std::size_t>(1, n - 1)(rng));
    }
    std::sort(at.begin(), at.end());

    std::vector<sim::LiveEvent> schedule;
    std::set<int> failed;
    for (int i = 0; i < events; ++i) {
      int kind = std::uniform_int_distribution<int>(0, 2)(rng);
      if (kind == 2 && !failed.empty()) {
        int sw = *failed.begin();
        failed.erase(failed.begin());
        schedule.push_back({at[static_cast<std::size_t>(i)],
                            session.restore_switch(sw).delta, "restore"});
      } else if (kind == 1 && failed.size() < 2) {
        // Core switches 6..11 are portless; failing up to two keeps the
        // campus connected.
        int sw = 6 + std::uniform_int_distribution<int>(0, 5)(rng);
        if (failed.count(sw)) {
          continue;  // already down; skip this slot
        }
        failed.insert(sw);
        schedule.push_back({at[static_cast<std::size_t>(i)],
                            session.fail_switch(sw).delta, "fail"});
      } else {
        auto& app = reg[std::uniform_int_distribution<std::size_t>(
            0, reg.size() - 1)(rng)];
        schedule.push_back({at[static_cast<std::size_t>(i)],
                            session.set_policy(app.policy).delta,
                            "set_policy"});
      }
    }
    ASSERT_FALSE(schedule.empty()) << "seed=" << seed;

    Reference ref = quiesced_replay(cold.delta, wl, schedule);
    sim::EngineOptions opts;
    opts.workers = 4;
    opts.record_epochs = true;
    sim::TrafficEngine engine(cold.delta, opts);
    auto out = engine.run_live(wl, schedule);
    ASSERT_NO_FATAL_FAILURE(expect_same_deliveries(ref.deliveries, out))
        << "seed=" << seed << " (" << schedule.size() << " events)";
    ASSERT_TRUE(ref.state == engine.network().merged_state())
        << "seed=" << seed << " state diverged after "
        << schedule.size() << " random events\nreference:\n"
        << ref.state.to_string() << "live:\n"
        << engine.network().merged_state().to_string();
    ASSERT_NO_FATAL_FAILURE(check_epoch_contract(
        engine.epoch_marks(), schedule, n,
        "seed=" + std::to_string(seed)));
  }
}

// Regression: an apply() landing while the ring window is saturated with
// cross-worker walks must neither drop nor double-process packets. The
// capacity-1 placement splits two always-written variables across switches
// (every packet escapes at ingress and visits both owners — the PR 4
// stuck-packet scenario), the window is the minimum the engine accepts,
// and the event re-places both variables mid-stream.
TEST(LiveUpdate, ApplyUnderFullRingOccupancyDropsNothing) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 2);
  auto egress = apps::assign_egress(apps::default_subnets(topo.ports()));
  PolPtr walk = ite(stest("lu-walk-a", idx("inport"), lit(999999)),
                    filter(drop()),
                    sinc("lu-walk-a", idx("inport")) >>
                        (sinc("lu-walk-b", idx("srcip")) >> egress));
  CompilerOptions copts;
  copts.state_capacity = 1;
  Session session(topo, tm, copts);
  EventResult cold = session.full_compile(walk);
  ASSERT_NE(cold.delta.placement.at(state_var_id("lu-walk-a")),
            cold.delta.placement.at(state_var_id("lu-walk-b")));

  const std::size_t n = 500;
  sim::Workload wl = sim::WorkloadGen(topo, tm, 5).generate(
      *sim::find_scenario("uniform"), n);
  // Recompiling with the variable order flipped moves the placement, so
  // the event migrates live state between workers.
  PolPtr flipped = ite(stest("lu-walk-b", idx("srcip"), lit(999999)),
                       filter(drop()),
                       sinc("lu-walk-b", idx("srcip")) >>
                           (sinc("lu-walk-a", idx("inport")) >> egress));
  std::vector<sim::LiveEvent> schedule;
  schedule.push_back({n / 2, session.set_policy(flipped).delta,
                      "set_policy"});
  Reference ref = quiesced_replay(cold.delta, wl, schedule);

  for (std::size_t window : {16u, 32u}) {
    sim::EngineOptions opts;
    opts.workers = 2;
    opts.window = window;
    opts.record_epochs = true;
    // The locality plan would co-locate both owners and the walk would
    // never cross a worker boundary; round-robin keeps them apart so the
    // event really migrates state between workers under ring pressure.
    opts.shard = sim::ShardMode::kRoundRobin;
    sim::TrafficEngine engine(cold.delta, opts);
    auto out = engine.run_live(wl, schedule);
    std::string tag = "window=" + std::to_string(window);
    // No drops, no double-processing: exactly one epoch mark set per
    // sequence number, every delivery accounted for once.
    EXPECT_EQ(engine.stats().packets, n) << tag;
    ASSERT_NO_FATAL_FAILURE(
        check_epoch_contract(engine.epoch_marks(), schedule, n, tag));
    ASSERT_NO_FATAL_FAILURE(expect_same_deliveries(ref.deliveries, out))
        << tag;
    ASSERT_TRUE(ref.state == engine.network().merged_state()) << tag;
    EXPECT_GT(engine.stats().forwards, 0u)
        << tag << ": scenario must cross worker shards";
    ASSERT_EQ(engine.stats().events.size(), 1u) << tag;
    EXPECT_GT(engine.stats().events[0].migrated_vars, 0u)
        << tag << ": the flipped placement must migrate state";
  }
}

// apply_async queued before the run starts is adopted at the first
// dispatch boundary — the deterministic end of snapd's feed path (a delta
// queued mid-run lands at whatever boundary the scheduler reaches next,
// which a test cannot pin down).
TEST(LiveUpdate, AsyncDeltaQueuedBeforeRunAdoptsAtFirstBoundary) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 3);
  auto reg = corpus(topo);
  Session session(topo, tm);
  EventResult cold = session.full_compile(reg[2].policy);  // heavy-hitter
  const std::size_t n = 300;
  sim::Workload wl = sim::WorkloadGen(topo, tm, 9).generate(
      sim::scenario_for_app(reg[2].name), n);
  RuleDelta swap = session.set_policy(reg[5].policy).delta;  // udp-flood

  // Reference: the swap applies before any packet.
  std::vector<sim::LiveEvent> at_start;
  at_start.push_back({0, swap, "set_policy"});
  Reference ref = quiesced_replay(cold.delta, wl, at_start);

  sim::EngineOptions opts;
  opts.workers = 2;
  sim::TrafficEngine engine(cold.delta, opts);
  engine.apply_async(swap, "set_policy");
  auto out = engine.run_live(wl, {});
  ASSERT_EQ(engine.stats().events.size(), 1u);
  EXPECT_EQ(engine.stats().events[0].at_seq, 0u);
  EXPECT_EQ(engine.stats().epochs, 2u);
  expect_same_deliveries(ref.deliveries, out);
  ASSERT_TRUE(ref.state == engine.network().merged_state());
  sim::LiveProgress p = engine.live();
  EXPECT_FALSE(p.running);
  EXPECT_EQ(p.completed, n);
  EXPECT_EQ(p.events_applied, 1u);
}

// Events scheduled at or past the stream end still swap (quiesced, after
// the last packet), so the network always finishes on the final epoch's
// rules — matching what a controller that keeps compiling after traffic
// stops expects.
TEST(LiveUpdate, TrailingEventAppliesAfterStreamDrains) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 3);
  auto reg = corpus(topo);
  Session session(topo, tm);
  EventResult cold = session.full_compile(reg[1].policy);
  const std::size_t n = 200;
  sim::Workload wl = sim::WorkloadGen(topo, tm, 11).generate(
      sim::scenario_for_app(reg[1].name), n);
  std::vector<sim::LiveEvent> schedule;
  schedule.push_back({n + 50, session.set_policy(reg[3].policy).delta,
                      "late"});
  Reference ref = quiesced_replay(cold.delta, wl, schedule);

  sim::TrafficEngine engine(cold.delta, {});
  auto out = engine.run_live(wl, schedule);
  expect_same_deliveries(ref.deliveries, out);
  ASSERT_TRUE(ref.state == engine.network().merged_state());
  ASSERT_EQ(engine.stats().events.size(), 1u);
  // No packet ever ran on the new rules.
  EXPECT_LT(engine.stats().events[0].first_packet_seconds, 0.0);
}

}  // namespace
}  // namespace snap
