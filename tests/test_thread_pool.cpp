// util/thread_pool.h: submission, futures, parallel_for coverage,
// exception propagation, nested fork-join (no deadlock when every worker
// is inside a join), and the inline (0-worker) degenerate pool.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace snap {
namespace {

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(pool.wait(f), 42);
}

TEST(ThreadPool, InlinePoolRunsEverythingOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0);
  std::thread::id caller = std::this_thread::get_id();
  auto f = pool.submit([caller] { return std::this_thread::get_id() == caller; });
  // With no workers the task ran inside submit, on the calling thread.
  EXPECT_TRUE(f.get());
  std::vector<int> order;
  pool.parallel_for(4, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(f), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(1000,
                        [&](std::size_t i) {
                          ran.fetch_add(1);
                          if (i == 17) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Every claimed index was accounted for (no lost work, no deadlock).
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 1000);
}

TEST(ThreadPool, NestedForkJoinDoesNotDeadlock) {
  // More joins in flight than workers: joins must help execute queued
  // tasks or this test hangs.
  ThreadPool pool(2);
  std::function<long(int)> fib = [&](int n) -> long {
    if (n < 2) return n;
    auto rhs = pool.submit([&, n] { return fib(n - 2); });
    long a = fib(n - 1);
    return a + pool.wait(rhs);
  };
  EXPECT_EQ(fib(16), 987);
}

TEST(ThreadPool, ManyConcurrentSubmitters) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  std::vector<std::thread> outside;
  for (int t = 0; t < 4; ++t) {
    outside.emplace_back([&] {
      std::vector<std::future<void>> fs;
      for (int i = 1; i <= 100; ++i) {
        fs.push_back(pool.submit([&sum, i] {
          sum.fetch_add(i, std::memory_order_relaxed);
        }));
      }
      for (auto& f : fs) f.get();
    });
  }
  for (auto& t : outside) t.join();
  EXPECT_EQ(sum.load(), 4 * 5050);
}

TEST(ThreadPool, RunOneReportsIdleQueues) {
  // Nothing was ever queued: run_one finds no task.
  ThreadPool pool(2);
  EXPECT_FALSE(pool.run_one());
}

}  // namespace
}  // namespace snap
