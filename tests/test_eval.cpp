// Tests of the Appendix-A eval semantics: predicates, state operations,
// composition, conflicts, and the DNS-tunnel-detect example of Figure 1.
#include <gtest/gtest.h>

#include "lang/eval.h"
#include "util/status.h"
#include "util/strings.h"

namespace snap {
namespace {

using namespace snap::dsl;

Value ip(const std::string& s) {
  return static_cast<Value>(ipv4_from_string(s));
}

TEST(Eval, IdAndDrop) {
  Packet p{{"srcip", 1}};
  Store st;
  auto r = eval(filter(id()), st, p);
  EXPECT_EQ(r.packets.size(), 1u);
  auto r2 = eval(filter(drop()), st, p);
  EXPECT_TRUE(r2.packets.empty());
}

TEST(Eval, FieldTestExactAndPrefix) {
  Packet p{{"dstip", ip("10.0.6.99")}};
  Store st;
  EXPECT_EQ(eval(filter(test("dstip", ip("10.0.6.99"))), st, p).packets.size(),
            1u);
  EXPECT_TRUE(
      eval(filter(test("dstip", ip("10.0.6.98"))), st, p).packets.empty());
  EXPECT_EQ(
      eval(filter(test_cidr("dstip", "10.0.6.0/24")), st, p).packets.size(),
      1u);
  EXPECT_TRUE(
      eval(filter(test_cidr("dstip", "10.0.7.0/24")), st, p).packets.empty());
}

TEST(Eval, TestOnAbsentFieldFails) {
  Packet p;
  Store st;
  EXPECT_TRUE(eval(filter(test("dstip", 5)), st, p).packets.empty());
  // Negation of a failing test passes.
  EXPECT_EQ(eval(filter(lnot(test("dstip", 5))), st, p).packets.size(), 1u);
}

TEST(Eval, BooleanConnectives) {
  Packet p{{"a", 1}, {"b", 2}};
  Store st;
  auto t = [&](PredPtr x) { return !eval(filter(x), st, p).packets.empty(); };
  EXPECT_TRUE(t(land(test("a", 1), test("b", 2))));
  EXPECT_FALSE(t(land(test("a", 1), test("b", 3))));
  EXPECT_TRUE(t(lor(test("a", 9), test("b", 2))));
  EXPECT_FALSE(t(lor(test("a", 9), test("b", 9))));
  EXPECT_TRUE(t(lnot(test("a", 9))));
}

TEST(Eval, StateTestReadsStore) {
  Packet p{{"srcip", 7}};
  Store st;
  st.set(state_var_id("seen"), {7}, kTrue);
  auto pass = eval(filter(stest("seen", idx("srcip"), lit(kTrue))), st, p);
  EXPECT_EQ(pass.packets.size(), 1u);
  EXPECT_TRUE(pass.log.reads.count(state_var_id("seen")));

  Packet q{{"srcip", 8}};
  auto fail = eval(filter(stest("seen", idx("srcip"), lit(kTrue))), st, q);
  EXPECT_TRUE(fail.packets.empty());
}

TEST(Eval, StateSetIncDec) {
  Packet p{{"srcip", 7}};
  Store st;
  StateVarId c = state_var_id("counter");
  auto r1 = eval(sinc("counter", idx("srcip")), st, p);
  EXPECT_EQ(r1.store.get(c, {7}), 1);
  EXPECT_TRUE(r1.log.writes.count(c));
  auto r2 = eval(sinc("counter", idx("srcip")), r1.store, p);
  EXPECT_EQ(r2.store.get(c, {7}), 2);
  auto r3 = eval(sdec("counter", idx("srcip")), r2.store, p);
  EXPECT_EQ(r3.store.get(c, {7}), 1);
  auto r4 = eval(sset("counter", idx("srcip"), lit(99)), r3.store, p);
  EXPECT_EQ(r4.store.get(c, {7}), 99);
}

TEST(Eval, StateUpdateOnAbsentFieldThrows) {
  Packet p;  // no srcip
  Store st;
  EXPECT_THROW(eval(sinc("counter", idx("srcip")), st, p), CompileError);
}

TEST(Eval, SequentialThreadsStateAndPackets) {
  Packet p{{"srcip", 7}};
  Store st;
  StateVarId c = state_var_id("c2");
  auto prog = sinc("c2", idx("srcip")) >>
              ite(stest("c2", idx("srcip"), lit(1)), mod("outport", 1),
                  mod("outport", 2));
  auto r = eval(prog, st, p);
  EXPECT_EQ(r.store.get(c, {7}), 1);
  ASSERT_EQ(r.packets.size(), 1u);
  EXPECT_EQ(r.packets.begin()->get("outport"), 1);
}

TEST(Eval, ParallelCopiesPackets) {
  Packet p{{"srcip", 7}};
  Store st;
  auto prog = mod("outport", 1) + mod("outport", 2);
  auto r = eval(prog, st, p);
  EXPECT_EQ(r.packets.size(), 2u);
}

TEST(Eval, ConsistentLogRule) {
  // The paper's literal consistency rule on logs (Appendix A).
  StateVarId s = state_var_id("log-s");
  StateVarId t = state_var_id("log-t");
  Log reads_s, writes_s, writes_t;
  reads_s.add_read(s);
  writes_s.add_write(s);
  writes_t.add_write(t);
  EXPECT_FALSE(consistent(reads_s, writes_s));
  EXPECT_FALSE(consistent(writes_s, writes_s));
  EXPECT_TRUE(consistent(reads_s, writes_t));
  EXPECT_TRUE(consistent(reads_s, reads_s));
  EXPECT_TRUE(consistent(Log{}, writes_s));
}

TEST(Eval, ParallelReadWriteConflictThrows) {
  Packet p{{"srcip", 7}};
  Store st;
  auto prog = par(filter(stest("rw", idx("srcip"), lit(kTrue))),
                  sset("rw", idx("srcip"), lit(kTrue)));
  EXPECT_THROW(eval(prog, st, p), CompileError);
}

TEST(Eval, ParallelDivergentWritesThrow) {
  Packet p{{"srcip", 7}};
  Store st;
  auto prog = par(sset("ww", idx("srcip"), lit(1)),
                  sset("ww", idx("srcip"), lit(2)));
  EXPECT_THROW(eval(prog, st, p), CompileError);
}

TEST(Eval, ParallelIdenticalWritesMerge) {
  // A shared write through both branches is unambiguous; our semantics (and
  // the xFDD translation) accept it.
  Packet p{{"srcip", 7}};
  Store st;
  auto prog = par(sset("same", idx("srcip"), lit(5)),
                  sset("same", idx("srcip"), lit(5)));
  auto r = eval(prog, st, p);
  EXPECT_EQ(r.store.get(state_var_id("same"), {7}), 5);
}

TEST(Eval, ParallelDisjointWritesMerge) {
  Packet p{{"srcip", 7}};
  Store st;
  auto prog = par(sset("wa", idx("srcip"), lit(1)),
                  sset("wb", idx("srcip"), lit(2)));
  auto r = eval(prog, st, p);
  EXPECT_EQ(r.store.get(state_var_id("wa"), {7}), 1);
  EXPECT_EQ(r.store.get(state_var_id("wb"), {7}), 2);
}

TEST(Eval, SequentialDivergentWritesAcrossCopiesThrow) {
  // p produces two packets that then write different values to s[0]:
  // (f<-1 + f<-2); s[0] <- f  must be rejected (the paper's example).
  Packet p{{"f", 0}};
  Store st;
  auto prog = (mod("f", 1) + mod("f", 2)) >>
              sset("sdiv", Expr::of_value(0), fld("f"));
  EXPECT_THROW(eval(prog, st, p), CompileError);
}

TEST(Eval, SequentialSameWritesAcrossCopiesOk) {
  // (f<-1 + g<-2); s[0] <- 7 is fine: both copies write the same value.
  Packet p{{"f", 0}, {"g", 0}};
  Store st;
  auto prog =
      (mod("f", 1) + mod("g", 2)) >> sset("ssame", Expr::of_value(0), lit(7));
  auto r = eval(prog, st, p);
  EXPECT_EQ(r.store.get(state_var_id("ssame"), {0}), 7);
  EXPECT_EQ(r.packets.size(), 2u);
}

TEST(Eval, ConditionReadsStateAndBranches) {
  Packet p{{"srcip", 7}};
  Store st;
  st.set(state_var_id("blk"), {7}, kTrue);
  auto prog = ite(stest("blk", idx("srcip"), lit(kTrue)), filter(drop()),
                  filter(id()));
  EXPECT_TRUE(eval(prog, st, p).packets.empty());
  Store st2;
  EXPECT_EQ(eval(prog, st2, p).packets.size(), 1u);
}

// --- the paper's running example (Figure 1), exercised packet by packet ---

PolPtr dns_tunnel_detect(Value threshold) {
  auto dns_response =
      land(test_cidr("dstip", "10.0.6.0/24"), test("srcport", 53));
  auto then_branch =
      sset("orphan", idx("dstip", "dns.rdata"), lit(kTrue)) >>
      (sinc("susp-client", idx("dstip")) >>
       ite(stest("susp-client", idx("dstip"), lit(threshold)),
           sset("blacklist", idx("dstip"), lit(kTrue)), filter(id())));
  auto else_branch =
      ite(land(test_cidr("srcip", "10.0.6.0/24"),
               stest("orphan", idx("srcip", "dstip"), lit(kTrue))),
          sset("orphan", idx("srcip", "dstip"), lit(kFalse)) >>
              sdec("susp-client", idx("srcip")),
          filter(id()));
  return ite(dns_response, then_branch, else_branch);
}

TEST(Eval, DnsTunnelDetectTracksOrphansAndBlacklists) {
  auto prog = dns_tunnel_detect(2);
  StateVarId orphan = state_var_id("orphan");
  StateVarId susp = state_var_id("susp-client");
  StateVarId blacklist = state_var_id("blacklist");

  Value client = ip("10.0.6.50");
  Value server1 = ip("93.184.216.34");
  Value server2 = ip("93.184.216.35");

  Store st;
  // DNS response resolving server1 for client.
  Packet dns1{{"dstip", client}, {"srcport", 53}, {"dns.rdata", server1}};
  st = eval(prog, st, dns1).store;
  EXPECT_EQ(st.get(orphan, {client, server1}), kTrue);
  EXPECT_EQ(st.get(susp, {client}), 1);
  EXPECT_EQ(st.get(blacklist, {client}), kFalse);

  // Client actually contacts server1: counter decremented.
  Packet use1{{"srcip", client}, {"dstip", server1}, {"srcport", 1234}};
  st = eval(prog, st, use1).store;
  EXPECT_EQ(st.get(orphan, {client, server1}), kFalse);
  EXPECT_EQ(st.get(susp, {client}), 0);

  // Two unused resolutions push the client over the threshold.
  st = eval(prog, st, dns1).store;
  Packet dns2{{"dstip", client}, {"srcport", 53}, {"dns.rdata", server2}};
  st = eval(prog, st, dns2).store;
  EXPECT_EQ(st.get(susp, {client}), 2);
  EXPECT_EQ(st.get(blacklist, {client}), kTrue);
}

TEST(Eval, DnsTunnelIgnoresUnrelatedTraffic) {
  auto prog = dns_tunnel_detect(2);
  Store st;
  Packet other{{"srcip", ip("10.0.1.1")},
               {"dstip", ip("10.0.2.2")},
               {"srcport", 80}};
  auto r = eval(prog, st, other);
  EXPECT_EQ(r.packets.size(), 1u);
  EXPECT_TRUE(r.store == st);
}

}  // namespace
}  // namespace snap
