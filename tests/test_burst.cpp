// The burst datapath (src/sim/burst.*): SoA packing losslessness and exact
// BurstPipeline-vs-serial equivalence across the policy corpus — same
// deliveries, merged state, hop/link counters and per-switch instruction
// counts at every burst size — plus the zero-allocation steady state.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "compiler/session.h"
#include "dataplane/network.h"
#include "sim/burst.h"
#include "sim/workload.h"
#include "topo/gen.h"
#include "util/status.h"

namespace snap {
namespace {

void expect_same_deliveries(const std::vector<Network::Delivery>& a,
                            const std::vector<Network::Delivery>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].outport, b[i].outport) << "delivery " << i;
    ASSERT_TRUE(a[i].packet == b[i].packet)
        << "delivery " << i << ": " << a[i].packet.to_string() << " vs "
        << b[i].packet.to_string();
  }
}

TEST(BurstTrace, PackingIsLossless) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 3);
  const sim::Scenario* mixed = sim::find_scenario("mixed");
  ASSERT_NE(mixed, nullptr);
  sim::Workload wl = sim::WorkloadGen(topo, tm, 7).generate(*mixed, 300);
  for (int burst : {1, 8, 64}) {
    sim::BurstTrace bt = sim::make_bursts(wl, burst);
    ASSERT_EQ(bt.packets, wl.packets.size()) << "burst " << burst;
    EXPECT_TRUE(std::is_sorted(bt.fields.begin(), bt.fields.end()));
    for (const sim::PacketBurst& b : bt.bursts) {
      EXPECT_LE(b.n, burst);
      for (int lane = 0; lane < b.n; ++lane) {
        std::size_t seq = b.base_seq + static_cast<std::size_t>(lane);
        EXPECT_EQ(b.inport[lane], wl.packets[seq].inport);
        EXPECT_EQ(b.flow[lane], wl.packets[seq].flow);
      }
    }
    for (std::size_t seq = 0; seq < wl.packets.size(); ++seq) {
      ASSERT_TRUE(bt.packet_at(seq) == wl.packets[seq].pkt)
          << "burst " << burst << " seq " << seq;
    }
  }
}

TEST(BurstTrace, ClampsAndEmptyTrace) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 3);
  sim::Workload wl =
      sim::WorkloadGen(topo, tm, 7).generate(*sim::find_scenario("mixed"), 10);
  EXPECT_EQ(sim::make_bursts(wl, 0).burst, 1);
  EXPECT_EQ(sim::make_bursts(wl, 1000).burst, sim::kMaxBurst);
  sim::Workload empty;
  sim::BurstTrace bt = sim::make_bursts(empty, 32);
  EXPECT_EQ(bt.packets, 0u);
  EXPECT_TRUE(bt.bursts.empty());
}

class BurstCorpus : public ::testing::TestWithParam<int> {};

TEST_P(BurstCorpus, PipelineMatchesSerialAcrossBurstSizes) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 1);
  auto c = apps::evaluation_corpus(
      "sim", apps::default_subnets(topo.ports()))[static_cast<std::size_t>(
      GetParam())];

  Session session(topo, tm);
  EventResult ev = session.full_compile(c.policy);
  sim::Workload wl = sim::WorkloadGen(topo, tm, 42).generate(
      sim::scenario_for_app(c.name), 400);

  Network serial(ev.delta);
  auto serial_out = serial.inject_batch(sim::as_injection_batch(wl));
  Store serial_state = serial.merged_state();

  for (int burst : {1, 8, 64}) {
    sim::BurstTrace bt = sim::make_bursts(wl, burst);
    Network net(ev.delta);
    sim::BurstPipeline pipe(net);
    pipe.run(bt);
    auto out = pipe.take_deliveries();
    ASSERT_NO_FATAL_FAILURE(expect_same_deliveries(serial_out, out))
        << c.name << " burst " << burst;
    ASSERT_TRUE(serial_state == net.merged_state())
        << c.name << " state diverged at burst " << burst << "\nserial:\n"
        << serial_state.to_string() << "pipeline:\n"
        << net.merged_state().to_string();
    EXPECT_EQ(serial.total_hops(), net.total_hops())
        << c.name << " burst " << burst;
    EXPECT_EQ(serial.link_packets(), net.link_packets())
        << c.name << " burst " << burst;
    for (int sw = 0; sw < topo.num_switches(); ++sw) {
      EXPECT_EQ(serial.switch_at(sw).instructions_executed(),
                net.switch_at(sw).instructions_executed())
          << c.name << " switch " << sw << " burst " << burst;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, BurstCorpus, ::testing::Range(0, 11),
                         [](const auto& info) {
                           std::string n =
                               apps::evaluation_corpus(
                                   "sim", apps::default_subnets(
                                              make_figure2_campus().ports()))
                                   [static_cast<std::size_t>(info.param)]
                                       .name;
                           for (char& ch : n) {
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           }
                           return n;
                         });

TEST(BurstPipeline, SteadyStateDoesNotAllocate) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 1);
  auto c = apps::evaluation_corpus("sim",
                                   apps::default_subnets(topo.ports()))[0];
  Session session(topo, tm);
  EventResult ev = session.full_compile(c.policy);
  sim::BurstTrace bt =
      sim::WorkloadGen(topo, tm, 42).generate_bursts(
          sim::scenario_for_app(c.name), 1000, 32);

  Network net(ev.delta);
  sim::BurstPipeline pipe(net);
  pipe.run(bt);  // warm-up: plan build, chain cache, staging high-water mark
  pipe.discard_staged();
  pipe.run(bt);
  EXPECT_EQ(pipe.last_run_allocs(), 0u)
      << "burst datapath allocated in the steady state";
  pipe.discard_staged();
}

TEST(BurstPipeline, ThrowsLikeSerialOnBadIngress) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 1);
  auto c = apps::evaluation_corpus("sim",
                                   apps::default_subnets(topo.ports()))[0];
  Session session(topo, tm);
  EventResult ev = session.full_compile(c.policy);

  sim::Workload wl;
  sim::SimPacket sp;
  sp.inport = 999999;  // not an attached port
  sp.pkt = Packet{{"srcip", 1}, {"dstip", 2}};
  wl.packets.push_back(sp);
  sim::BurstTrace bt = sim::make_bursts(wl, 8);

  Network serial(ev.delta);
  std::string serial_msg;
  try {
    serial.inject(sp.inport, sp.pkt);
  } catch (const InternalError& e) {
    serial_msg = e.what();
  }
  ASSERT_FALSE(serial_msg.empty());

  Network net(ev.delta);
  sim::BurstPipeline pipe(net);
  std::string pipe_msg;
  try {
    pipe.run(bt);
  } catch (const InternalError& e) {
    pipe_msg = e.what();
  }
  EXPECT_EQ(serial_msg, pipe_msg);
}

}  // namespace
}  // namespace snap
