// The textual policy corpus (policies/*.snap): each Appendix-F policy in
// concrete syntax must parse and behave identically to its builder-API
// twin across randomized and hand-written traces.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "apps/apps.h"
#include "lang/eval.h"
#include "lang/parser.h"
#include "util/rng.h"

#ifndef SNAP_POLICY_DIR
#define SNAP_POLICY_DIR "policies"
#endif

namespace snap {
namespace {

using namespace snap::dsl;

std::string read_policy(const std::string& name) {
  std::string path = std::string(SNAP_POLICY_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

ConstTable consts_with_threshold(Value threshold) {
  ConstTable consts = apps::protocol_constants();
  consts["threshold"] = threshold;
  return consts;
}

// Replays `trace` through both policies in lock step.
void expect_equivalent(const PolPtr& a, const PolPtr& b,
                       const std::vector<Packet>& trace) {
  Store sa, sb;
  for (const Packet& pkt : trace) {
    EvalResult ra = eval(a, sa, pkt);
    EvalResult rb = eval(b, sb, pkt);
    ASSERT_EQ(ra.packets, rb.packets) << "on " << pkt.to_string();
    ASSERT_TRUE(ra.store == rb.store) << "on " << pkt.to_string();
    sa = ra.store;
    sb = rb.store;
  }
}

// A generic random trace over the fields the corpus policies touch.
std::vector<Packet> random_trace(std::uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<Packet> out;
  for (int i = 0; i < n; ++i) {
    Packet p;
    p.set("srcip", 0x0a000600 + rng.uniform(0, 3));  // around 10.0.6.x
    p.set("dstip", 0x0a000600 + rng.uniform(0, 3));
    p.set("srcport", rng.bernoulli(0.4) ? 53 : rng.uniform(20, 25));
    p.set("dstport", rng.bernoulli(0.4) ? 53 : rng.uniform(20, 25));
    p.set("proto", rng.bernoulli(0.5) ? 17 : 6);
    p.set("tcp.flags", std::vector<Value>{1, 2, 16}[rng.uniform(0, 2)]);
    p.set("dns.rdata", rng.uniform(0, 3));
    p.set("dns.qname", rng.uniform(0, 2));
    p.set("ftp.PORT", rng.uniform(1000, 1002));
    p.set("mpeg.frame-type", rng.uniform(1, 3));
    p.set("sid", rng.uniform(0, 2));
    p.set("http.user-agent", rng.uniform(0, 1));
    p.set("smtp.MTA", rng.uniform(0, 2));
    out.push_back(std::move(p));
  }
  return out;
}

struct CorpusCase {
  const char* file;
  PolPtr builder;
  Value threshold;
};

class PolicyCorpus : public ::testing::TestWithParam<int> {};

std::vector<CorpusCase> corpus() {
  return {
      {"dns_tunnel_detect.snap",
       apps::dns_tunnel_detect("dttxt", "10.0.6.0/24", 2), 2},
      {"stateful_firewall.snap",
       apps::stateful_firewall("fwtxt", "10.0.6.0/24"), 0},
      {"heavy_hitter.snap", apps::heavy_hitter("hhtxt", 2), 2},
      {"super_spreader.snap", apps::super_spreader("ssptxt", 2), 2},
      {"dns_amplification.snap", apps::dns_amplification("amtxt"), 0},
      {"udp_flood.snap", apps::udp_flood("uftxt", 2), 2},
      {"ftp_monitoring.snap", apps::ftp_monitoring("ftptxt"), 0},
      {"selective_dropping.snap", apps::selective_packet_dropping("seltxt"),
       0},
      {"many_ip_domains.snap", apps::many_ip_domains("midtxt", 2), 2},
      {"sidejacking.snap", apps::sidejack_detect("sjtxt", "10.0.6.10/32"),
       0},
      {"spam_detection.snap", apps::spam_detect("smtxt", 2), 2},
  };
}

TEST_P(PolicyCorpus, TextMatchesBuilderOnRandomTraces) {
  const CorpusCase c = corpus()[static_cast<std::size_t>(GetParam())];
  PolPtr parsed =
      parse_policy(read_policy(c.file), consts_with_threshold(c.threshold));
  for (std::uint64_t seed : {1u, 7u, 23u}) {
    expect_equivalent(parsed, c.builder, random_trace(seed, 40));
  }
}

INSTANTIATE_TEST_SUITE_P(AllFiles, PolicyCorpus,
                         ::testing::Range(0, 11),
                         [](const auto& info) {
                           std::string n = corpus()[info.param].file;
                           return n.substr(0, n.find('.'));
                         });

TEST(PolicyCorpus, EveryFileParses) {
  for (const auto& c : corpus()) {
    EXPECT_NO_THROW(parse_policy(read_policy(c.file),
                                 consts_with_threshold(2)))
        << c.file;
  }
}

}  // namespace
}  // namespace snap
