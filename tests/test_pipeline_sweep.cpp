// Parameterized integration sweep: compile the paper's evaluation program
// (assumption + DNS-tunnel-detect + assign-egress) on each ISP topology of
// Table 5 and check the structural invariants the compiler must guarantee:
// every stateful flow's path visits its state variables' switches in
// dependency order, placements are deterministic, and TE re-optimization
// preserves them.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/apps.h"
#include "compiler/pipeline.h"
#include "topo/gen.h"

namespace snap {
namespace {

PolPtr evaluation_program(const Topology& topo, const std::string& prefix) {
  auto subnets = apps::default_subnets(topo.ports());
  PortId cs_port = topo.ports().back();
  std::string cs_subnet;
  for (const auto& [subnet, port] : subnets) {
    if (port == cs_port) cs_subnet = subnet;
  }
  return dsl::filter(apps::assumption(subnets)) >>
         (apps::dns_tunnel_detect(prefix, cs_subnet, 10) >>
          apps::assign_egress(subnets));
}

class IspSweep : public ::testing::TestWithParam<int> {};

TEST_P(IspSweep, StateVisitOrderInvariantHolds) {
  const auto& spec = table5_specs()[static_cast<std::size_t>(GetParam())];
  ASSERT_FALSE(spec.campus);
  Topology topo = make_table5_topology(spec, 42);
  TrafficMatrix tm = gravity_traffic(topo, 30.0, 5);
  std::string prefix = std::string("sw-") + spec.name;
  PolPtr prog = evaluation_program(topo, prefix);

  Compiler compiler(topo, tm);
  CompileResult r = compiler.compile(prog);

  // Every variable placed on a real switch.
  ASSERT_EQ(r.pr.placement.switch_of.size(), 3u);
  for (const auto& [var, sw] : r.pr.placement.switch_of) {
    EXPECT_GE(sw, 0);
    EXPECT_LT(sw, topo.num_switches());
  }

  // Flows needing state must traverse the placed switches in rank order.
  int stateful_flows = 0;
  for (const auto& [uv, path] : r.pr.routing.paths) {
    auto states = r.psmap.states_for(uv.first, uv.second);
    if (states.empty()) continue;
    ++stateful_flows;
    long long last_pos = -1;
    for (StateVarId s : states) {
      int sw = r.pr.placement.at(s);
      auto it = std::find(path.begin(), path.end(), sw);
      ASSERT_NE(it, path.end())
          << spec.name << ": flow (" << uv.first << "," << uv.second
          << ") misses " << state_var_name(s);
      long long pos = it - path.begin();
      EXPECT_GE(pos, last_pos) << spec.name << ": out-of-order state visit";
      last_pos = std::max(last_pos, pos);
    }
  }
  EXPECT_GT(stateful_flows, 0) << spec.name;

  // Determinism: recompiling yields the identical placement.
  Compiler compiler2(topo, tm);
  CompileResult r2 = compiler2.compile(prog);
  EXPECT_EQ(r.pr.placement.switch_of, r2.pr.placement.switch_of);

  // TE after a traffic shift keeps the placement and the invariant.
  TrafficMatrix shifted = gravity_traffic(topo, 30.0, 55);
  compiler.reoptimize_te(r, shifted);
  for (const auto& [uv, path] : r.pr.routing.paths) {
    for (StateVarId s : r.psmap.states_for(uv.first, uv.second)) {
      EXPECT_NE(std::find(path.begin(), path.end(), r.pr.placement.at(s)),
                path.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Table5Isps, IspSweep,
                         ::testing::Values(3, 4, 5, 6),  // the 4 AS entries
                         [](const auto& info) {
                           std::string n =
                               table5_specs()[info.param].name;
                           std::replace(n.begin(), n.end(), ' ', '_');
                           return n;
                         });

}  // namespace
}  // namespace snap
