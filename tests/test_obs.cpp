// The telemetry subsystem (src/obs): stable category names, the
// ThreadBuf flight-recorder ring and stage clock, the metrics registry's
// Prometheus/JSON expositions, the golden SimStats::to_json schema (and
// the committed BENCH_throughput.json against it), Chrome trace-event
// well-formedness, det-2w cycle attribution, byte equivalence with
// tracing armed, and the zero-steady-state-allocation invariant with the
// hooks compiled in.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "compiler/session.h"
#include "dataplane/network.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "sim/burst.h"
#include "sim/engine.h"
#include "sim/workload.h"
#include "topo/gen.h"

namespace snap {
namespace {

using namespace snap::dsl;

// ------------------------------------------------------------ fixtures

struct Compiled {
  Topology topo;
  TrafficMatrix tm;
  EventResult ev;
  sim::Workload wl;
};

// One compiled policy + workload shared by the engine-driving tests
// (compiling once keeps the suite fast; every test runs its own engine).
Compiled& compiled(std::size_t packets = 4000) {
  static Compiled* c = [] {
    auto* out = new Compiled;
    out->topo = make_figure2_campus();
    out->tm = gravity_traffic(out->topo, 10.0, 3);
    auto subnets = apps::default_subnets(out->topo.ports());
    PolPtr policy = apps::heavy_hitter("obs-hh", 3) >>
                    (apps::stateful_firewall("obs-fw", "10.0.6.0/24") >>
                     apps::assign_egress(subnets));
    static Session session(out->topo, out->tm);
    out->ev = session.full_compile(policy);
    const sim::Scenario* mixed = sim::find_scenario("mixed");
    out->wl = sim::WorkloadGen(out->topo, out->tm, 21).generate(*mixed, 4000);
    return out;
  }();
  (void)packets;
  return *c;
}

bool has_key(const std::string& json, const std::string& key) {
  return json.find("\"" + key + "\":") != std::string::npos;
}

// ------------------------------------------------------- category names

TEST(ObsCat, NamesAreStableAndUnique) {
  std::set<std::string> seen;
  for (std::size_t c = 0; c < obs::kCatCount; ++c) {
    std::string n = obs::cat_name(static_cast<obs::Cat>(c));
    EXPECT_FALSE(n.empty()) << "cat " << c;
    EXPECT_TRUE(seen.insert(n).second) << "duplicate cat name " << n;
    // These are JSON keys and Prometheus-adjacent identifiers.
    for (char ch : n) {
      EXPECT_TRUE((ch >= 'a' && ch <= 'z') || ch == '_' ||
                  (ch >= '0' && ch <= '9'))
          << "cat name '" << n << "' has non-identifier char";
    }
  }
  // Spot-pin the names the golden schema depends on.
  EXPECT_STREQ(obs::cat_name(obs::Cat::kExec), "exec");
  EXPECT_STREQ(obs::cat_name(obs::Cat::kGateWait), "gate_wait");
  EXPECT_STREQ(obs::cat_name(obs::Cat::kIdle), "idle");
  EXPECT_STREQ(obs::cat_name(obs::Cat::kPktSegment), "pkt_segment");
}

// ------------------------------------------------------------ ThreadBuf

TEST(ObsThreadBuf, FlightRecorderKeepsNewestAndCountsDrops) {
  obs::ThreadBuf buf("t", 7, /*capacity=*/8);
  buf.arm(/*trace_on=*/true, /*acct_on=*/false);
  for (std::uint64_t i = 0; i < 20; ++i) {
    buf.push({i, i + 1, i, 0, 0, 0, obs::Cat::kExec, 0});
  }
  EXPECT_EQ(buf.recorded(), 20u);
  EXPECT_EQ(buf.dropped(), 12u);
  std::vector<obs::SpanRec> recs = buf.drain();
  ASSERT_EQ(recs.size(), 8u);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].t0, 12 + i) << "oldest-surviving-first order";
  }
}

TEST(ObsThreadBuf, StageClockPartitionsWall) {
#if !SNAP_OBS
  GTEST_SKIP() << "telemetry hooks compiled out (SNAP_OBS=0)";
#endif
  obs::ThreadBuf buf("t", 0);
  buf.arm(false, /*acct_on=*/true);
  obs::BindThread bind(&buf);
  // Burn a little attributable time in two buckets.
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 200000; ++i) sink = sink + static_cast<std::uint64_t>(i);
  obs::stage_mark(obs::Cat::kExec);
  for (int i = 0; i < 200000; ++i) sink = sink + static_cast<std::uint64_t>(i);
  obs::stage_mark(obs::Cat::kIdle);
  buf.finish();
  const auto& cat = buf.cat_ns();
  std::uint64_t attributed = 0;
  for (std::uint64_t ns : cat) attributed += ns;
  EXPECT_GT(cat[static_cast<std::size_t>(obs::Cat::kExec)], 0u);
  EXPECT_GT(cat[static_cast<std::size_t>(obs::Cat::kIdle)], 0u);
  // Marks partition [arm, last mark]; only the tail after the final mark
  // is unattributed, so the sum never exceeds the wall clock.
  EXPECT_LE(attributed, buf.wall_ns());
}

// -------------------------------------------------------------- registry

TEST(ObsRegistry, PrometheusAndJsonExposition) {
  obs::Registry reg;
  reg.set_counter("t_packets_total", 12, "packets");
  reg.set_gauge("t_occupancy{ring=\"w0\"}", 3, "ring occupancy");
  reg.set_gauge("t_occupancy{ring=\"w1\"}", 5, "ring occupancy");
  reg.set_histogram("t_latency_us", {1, 10, 100}, {4, 2, 1, 1}, "latency");

  std::string prom = reg.prometheus();
  EXPECT_NE(prom.find("# HELP t_packets_total packets\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE t_packets_total counter\n"), std::string::npos);
  EXPECT_NE(prom.find("t_packets_total 12\n"), std::string::npos);
  // Labelled series share one HELP/TYPE header for the family.
  std::size_t first = prom.find("# TYPE t_occupancy gauge");
  EXPECT_NE(first, std::string::npos);
  EXPECT_EQ(prom.find("# TYPE t_occupancy gauge", first + 1),
            std::string::npos);
  EXPECT_NE(prom.find("t_occupancy{ring=\"w0\"} 3\n"), std::string::npos);
  EXPECT_NE(prom.find("t_occupancy{ring=\"w1\"} 5\n"), std::string::npos);
  // Histogram buckets are cumulative and end at +Inf == _count.
  EXPECT_NE(prom.find("t_latency_us_bucket{le=\"1\"} 4\n"),
            std::string::npos);
  EXPECT_NE(prom.find("t_latency_us_bucket{le=\"10\"} 6\n"),
            std::string::npos);
  EXPECT_NE(prom.find("t_latency_us_bucket{le=\"100\"} 7\n"),
            std::string::npos);
  EXPECT_NE(prom.find("t_latency_us_bucket{le=\"+Inf\"} 8\n"),
            std::string::npos);
  EXPECT_NE(prom.find("t_latency_us_count 8\n"), std::string::npos);

  std::string js = reg.json();
  EXPECT_EQ(js.front(), '{');
  EXPECT_EQ(js.back(), '}');
  EXPECT_TRUE(has_key(js, "t_packets_total"));

  reg.clear();
  EXPECT_EQ(reg.prometheus(), "");
}

// ------------------------------------------------- golden SimStats schema

// Every top-level key SimStats::to_json emits; bench JSON consumers
// (tools/ci.sh, the trajectory collector) and this test pin the set.
const char* const kStatsKeys[] = {
    "packets",         "deliveries",       "forwards",
    "instructions",    "hops",             "conflict_hits",
    "conflict_misses", "seconds",          "pps",
    "workers",         "burst",            "steady_allocs",
    "direct_switches", "deterministic",    "per_switch_instructions",
    "per_switch_events", "hop_histogram",  "latency_us_log2_histogram",
    "epoch_slot_hwm",  "epoch_stall_slot", "epoch_stall_mask",
    "epoch_stall_migration", "trace_records", "trace_dropped",
    "ring_hwm",        "comp_ring_hwm",    "cycles",
    "epochs",          "events",          "shard_mode",
    "shard_cross_edges", "shard_total_edges", "shard_drift",
    "lookahead_dispatches", "rtc_bursts",
};

TEST(ObsGoldenSchema, SimStatsToJson) {
  Compiled& c = compiled();
  sim::EngineOptions opts;
  opts.workers = 2;
  opts.deterministic = true;
  opts.profile = true;
  sim::TrafficEngine engine(c.ev.delta, opts);
  auto out = engine.run(c.wl);
  EXPECT_FALSE(out.empty());
  std::string js = engine.stats().to_json();
  for (const char* key : kStatsKeys) {
    EXPECT_TRUE(has_key(js, key)) << "SimStats::to_json lost key " << key;
  }
  // Cycle rows: one per engine thread, each wall-partitioned into the
  // engine-stage categories keyed by the stable cat names.
  ASSERT_EQ(engine.stats().cycles.size(), 3u) << "2 workers + scheduler";
  for (std::size_t ci = 0; ci < obs::kAcctCatCount; ++ci) {
    std::string key =
        std::string(obs::cat_name(static_cast<obs::Cat>(ci))) + "_ns";
    EXPECT_TRUE(has_key(js, key)) << "cycle table lost key " << key;
  }
  EXPECT_NE(js.find("\"name\":\"worker0\""), std::string::npos);
  EXPECT_NE(js.find("\"name\":\"scheduler\""), std::string::npos);
}

TEST(ObsGoldenSchema, CommittedBenchTrajectory) {
  // BENCH_throughput.json at the repo root is the perf trajectory later
  // PRs regress against; its schema must carry the telemetry keys.
  std::ifstream in(std::string(SNAP_REPO_ROOT) + "/BENCH_throughput.json");
  ASSERT_TRUE(in.good()) << "BENCH_throughput.json missing at repo root";
  std::stringstream ss;
  ss << in.rdbuf();
  std::string js = ss.str();
  for (const char* key :
       {"packets", "workers", "cores", "burst", "repeat", "pps", "serial",
        "serial_scalar", "serial_profiled", "deterministic",
        "deterministic_confined_w1", "deterministic_traced",
        "deterministic_soundness", "deterministic_lookahead",
        "free_running", "free_running_rtc", "overhead",
        "disarmed_over_serial", "profiled_over_serial",
        "traced_over_deterministic", "dispatch_share", "allocs",
        "deliveries", "state_entries", "corpus_policies_checked",
        "equivalent", "event_latency", "stats_last_run"}) {
    EXPECT_TRUE(has_key(js, key))
        << "BENCH_throughput.json lost key " << key;
  }
  for (const char* key : kStatsKeys) {
    EXPECT_TRUE(has_key(js, key))
        << "BENCH_throughput.json stats block lost key " << key;
  }
}

// --------------------------------------------------- trace export checks

// Minimal line-oriented scan of write_chrome_trace output (the writer
// emits one event object per line).
struct ParsedEv {
  char ph = '?';
  int tid = -1;
  double ts = -1;
};

std::vector<ParsedEv> parse_events(const std::string& json) {
  std::vector<ParsedEv> out;
  std::istringstream is(json);
  std::string line;
  while (std::getline(is, line)) {
    std::size_t ph = line.find("\"ph\":\"");
    if (ph == std::string::npos) continue;
    ParsedEv e;
    e.ph = line[ph + 6];
    std::size_t tid = line.find("\"tid\":");
    if (tid != std::string::npos) e.tid = std::atoi(line.c_str() + tid + 6);
    std::size_t ts = line.find("\"ts\":");
    if (ts != std::string::npos) e.ts = std::atof(line.c_str() + ts + 5);
    out.push_back(e);
  }
  return out;
}

TEST(ObsTrace, ChromeExportIsWellFormed) {
#if !SNAP_OBS
  GTEST_SKIP() << "telemetry hooks compiled out (SNAP_OBS=0)";
#endif
  Compiled& c = compiled();
  sim::EngineOptions opts;
  opts.workers = 2;
  opts.deterministic = true;
  opts.trace_sample = 1;  // trace every packet: worst case for the writer
  sim::TrafficEngine engine(c.ev.delta, opts);
  auto out = engine.run(c.wl);
  EXPECT_FALSE(out.empty());
  EXPECT_GT(engine.stats().trace_records, 0u);
  const obs::TraceData& data = engine.trace();
  ASSERT_FALSE(data.empty());
  ASSERT_EQ(data.threads.size(), 3u);  // 2 workers + scheduler

  std::ostringstream os;
  obs::write_chrome_trace(data, os);
  std::string js = os.str();
  ASSERT_NE(js.find("{\"traceEvents\":["), std::string::npos);

  std::vector<ParsedEv> evs = parse_events(js);
  ASSERT_GT(evs.size(), 3u);
  // Metadata first, then: per-tid monotonic timestamps and matched B/E
  // nesting (what Perfetto requires to render the track).
  std::map<int, double> prev;
  std::map<int, int> depth;
  double last_ts = 0;
  std::size_t spans = 0, instants = 0;
  for (const ParsedEv& e : evs) {
    if (e.ph == 'M') continue;
    ASSERT_GE(e.ts, 0.0);
    EXPECT_GE(e.ts, last_ts) << "merged stream must be monotonic";
    last_ts = e.ts;
    auto it = prev.find(e.tid);
    if (it != prev.end()) EXPECT_GE(e.ts, it->second) << "tid " << e.tid;
    prev[e.tid] = e.ts;
    if (e.ph == 'B') {
      ++depth[e.tid];
      ++spans;
    } else if (e.ph == 'E') {
      EXPECT_GT(depth[e.tid], 0) << "E without matching B on tid " << e.tid;
      --depth[e.tid];
    } else {
      ASSERT_EQ(e.ph, 'i');
      ++instants;
    }
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed span on tid " << tid;
  }
  EXPECT_GT(spans, 0u) << "no pkt_segment spans recorded";
  EXPECT_GT(instants, 0u) << "no dispatch/complete instants recorded";
}

TEST(ObsTrace, ByteEquivalentWithTracingArmed) {
  Compiled& c = compiled();
  Network serial(c.ev.delta);
  auto serial_out = serial.inject_batch(sim::as_injection_batch(c.wl));

  sim::EngineOptions opts;
  opts.workers = 2;
  opts.deterministic = true;
  opts.trace_sample = 4;
  opts.profile = true;
  sim::TrafficEngine engine(c.ev.delta, opts);
  auto traced_out = engine.run(c.wl);
  EXPECT_TRUE(serial_out == traced_out)
      << "tracing changed the delivery stream";
  EXPECT_TRUE(serial.merged_state() == engine.network().merged_state())
      << "tracing changed final state";
}

// ------------------------------------------------ cycle attribution gate

TEST(ObsCycles, Det2wAttributesNinetyPercentOfWall) {
#if !SNAP_OBS
  GTEST_SKIP() << "telemetry hooks compiled out (SNAP_OBS=0)";
#endif
  Compiled& c = compiled();
  sim::EngineOptions opts;
  opts.workers = 2;
  opts.deterministic = true;
  opts.profile = true;
  sim::TrafficEngine engine(c.ev.delta, opts);
  engine.run(c.wl);
  const sim::SimStats& st = engine.stats();
  ASSERT_EQ(st.cycles.size(), 3u);
  for (const sim::SimStats::CycleRow& row : st.cycles) {
    ASSERT_GT(row.wall_ns, 0u) << row.name;
    std::uint64_t attributed = 0;
    for (std::uint64_t ns : row.cat_ns) attributed += ns;
    EXPECT_GE(static_cast<double>(attributed),
              0.90 * static_cast<double>(row.wall_ns))
        << row.name << " attributes only " << attributed << "/"
        << row.wall_ns << " ns";
  }
}

// -------------------------------------------- steady-state zero-alloc

TEST(ObsOverhead, BurstSteadyStateAllocFreeWithTelemetryArmed) {
  // The PR-8 invariant must survive the hooks compiled in AND armed: a
  // warmed burst pipeline's second run reports zero heap-growth events
  // even while cycle accounting and span recording are live.
  Compiled& c = compiled();
  sim::BurstTrace bt = sim::make_bursts(c.wl, sim::kMaxBurst);
  Network net(c.ev.delta);
  sim::BurstPipeline pipe(net);
  obs::ThreadBuf buf("burst", 0);
  buf.arm(/*trace_on=*/true, /*acct_on=*/true);
  obs::BindThread bind(&buf);
  pipe.run(bt);  // warm-up: growth allowed
  pipe.discard_staged();
  pipe.run(bt);
  EXPECT_EQ(pipe.last_run_allocs(), 0u)
      << "telemetry hooks allocate in the steady state";
  pipe.discard_staged();
#if SNAP_OBS
  EXPECT_GT(buf.recorded(), 0u);
#endif
}

// ------------------------------------------------- engine registry wiring

TEST(ObsRegistry, EnginePopulatesGlobalRegistry) {
  Compiled& c = compiled();
  obs::Registry::global().clear();
  sim::EngineOptions opts;
  opts.workers = 2;
  opts.deterministic = true;
  sim::TrafficEngine engine(c.ev.delta, opts);
  engine.run(c.wl);
  std::string prom = obs::Registry::global().prometheus();
  for (const char* series :
       {"snap_engine_workers 2", "snap_engine_packets_total 4000",
        "snap_engine_pps", "snap_conflict_cache_hits_total",
        "snap_epoch_slot_hwm", "snap_epoch_stall_total{cause=\"slot\"}",
        "snap_ring_occupancy_hwm{ring=\"task_w0\"}",
        "snap_state_table_entries"}) {
    EXPECT_NE(prom.find(series), std::string::npos)
        << "registry lost series " << series;
  }
}

}  // namespace
}  // namespace snap
