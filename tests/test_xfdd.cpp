// xFDD core tests: hash-consing, leaf normalization, parallel composition,
// negation, restriction, ordering, race detection.
#include <gtest/gtest.h>

#include "lang/eval.h"
#include "util/status.h"
#include "xfdd/compose.h"
#include "xfdd/dot.h"
#include "xfdd/xfdd.h"

namespace snap {
namespace {

using namespace snap::dsl;

TEST(XfddStore, HashConsingDeduplicates) {
  XfddStore s;
  snap::Test t = TestFV{field_id("a"), 1, kExactMatch};
  XfddId d1 = s.branch(t, s.id_leaf(), s.drop_leaf());
  XfddId d2 = s.branch(t, s.id_leaf(), s.drop_leaf());
  EXPECT_EQ(d1, d2);
  XfddId d3 = s.branch(t, s.drop_leaf(), s.id_leaf());
  EXPECT_NE(d1, d3);
}

TEST(XfddStore, RedundantBranchCollapses) {
  XfddStore s;
  snap::Test t = TestFV{field_id("a"), 1, kExactMatch};
  EXPECT_EQ(s.branch(t, s.id_leaf(), s.id_leaf()), s.id_leaf());
}

TEST(ActionSetNorm, DropEliminated) {
  auto set = ActionSet::of({ActionSeq::make_drop(), ActionSeq()});
  EXPECT_TRUE(set.is_id());
  auto only_drop = ActionSet::of({ActionSeq::make_drop()});
  EXPECT_TRUE(only_drop.is_drop());
}

TEST(ActionSeqNorm, FieldModsCompressAndSubstitute) {
  FieldId f = field_id("f");
  StateVarId sv = state_var_id("xs");
  // f <- 1 ; xs[f] <- 2 ; f <- 3  =>  state op sees f=1, final mod f=3.
  auto seq = ActionSeq::of({ActMod{f, 1},
                            ActStateSet{sv, Expr::of_field(f), Expr::of_value(2)},
                            ActMod{f, 3}});
  ASSERT_EQ(seq.state_ops().size(), 1u);
  const auto& op = std::get<ActStateSet>(seq.state_ops()[0]);
  ASSERT_EQ(op.index.size(), 1u);
  EXPECT_TRUE(op.index.atoms()[0].is_value());
  EXPECT_EQ(op.index.atoms()[0].value(), 1);
  ASSERT_EQ(seq.mods().size(), 1u);
  EXPECT_EQ(seq.mods()[0].second, 3);
}

TEST(ActionSeqNorm, ThenRewritesThroughMods) {
  FieldId f = field_id("g");
  StateVarId sv = state_var_id("ys");
  auto first = ActionSeq::of({ActMod{f, 7}});
  auto second =
      ActionSeq::of({ActStateSet{sv, Expr::of_field(f), Expr::of_value(1)}});
  auto combined = first.then(second);
  const auto& op = std::get<ActStateSet>(combined.state_ops()[0]);
  EXPECT_EQ(op.index.atoms()[0].value(), 7);
}

TEST(Races, DivergentParallelWritesRejected) {
  StateVarId sv = state_var_id("race1");
  auto a = ActionSeq::of({ActStateSet{sv, Expr::of_value(0), Expr::of_value(1)}});
  auto b = ActionSeq::of({ActStateSet{sv, Expr::of_value(0), Expr::of_value(2)}});
  auto set_a = ActionSet::of({a});
  auto set_b = ActionSet::of({b});
  EXPECT_THROW(set_a.unite(set_b), CompileError);
}

TEST(Races, IdenticalFactoredWritesAccepted) {
  StateVarId sv = state_var_id("race2");
  FieldId f = field_id("h");
  auto w = ActStateSet{sv, Expr::of_value(0), Expr::of_value(1)};
  auto a = ActionSeq::of({Action{w}, Action{ActMod{f, 1}}});
  auto b = ActionSeq::of({Action{w}, Action{ActMod{f, 2}}});
  auto set = ActionSet::of({a}).unite(ActionSet::of({b}));
  EXPECT_EQ(set.seqs().size(), 2u);
  EXPECT_EQ(set.state_programs().size(), 1u);
}

TEST(Compose, PredicatesAsDiagrams) {
  XfddStore s;
  TestOrder order;
  Store st;
  Packet in{{"a", 1}, {"b", 2}};

  auto d_and = pred_to_xfdd(s, order, land(test("a", 1), test("b", 2)));
  EXPECT_EQ(eval_xfdd(s, d_and, st, in).packets.size(), 1u);
  auto d_and2 = pred_to_xfdd(s, order, land(test("a", 1), test("b", 3)));
  EXPECT_TRUE(eval_xfdd(s, d_and2, st, in).packets.empty());

  auto d_or = pred_to_xfdd(s, order, lor(test("a", 9), test("b", 2)));
  EXPECT_EQ(eval_xfdd(s, d_or, st, in).packets.size(), 1u);

  auto d_not = pred_to_xfdd(s, order, lnot(test("a", 1)));
  EXPECT_TRUE(eval_xfdd(s, d_not, st, in).packets.empty());
}

TEST(Compose, NegationIsInvolutive) {
  XfddStore s;
  TestOrder order;
  auto x = lor(test("a", 1), land(test("b", 2), lnot(test("c", 3))));
  XfddId d = pred_to_xfdd(s, order, x);
  EXPECT_EQ(xfdd_neg(s, xfdd_neg(s, d)), d);
}

TEST(Compose, NegationOfNonPredicateThrows) {
  XfddStore s;
  TestOrder order;
  XfddId d = to_xfdd(s, order, mod("a", 5));
  EXPECT_THROW(xfdd_neg(s, d), CompileError);
}

TEST(Compose, ParallelMakesCopies) {
  XfddStore s;
  TestOrder order;
  Store st;
  Packet in;
  XfddId d = to_xfdd(s, order, mod("o", 1) + mod("o", 2));
  auto r = eval_xfdd(s, d, st, in);
  EXPECT_EQ(r.packets.size(), 2u);
}

TEST(Compose, ParallelReadWriteRaceRejected) {
  XfddStore s;
  TestOrder order;
  auto p = par(filter(stest("rw2", idx("a"), lit(kTrue))),
               sset("rw2", idx("a"), lit(kTrue)));
  EXPECT_THROW(to_xfdd(s, order, p), CompileError);
}

TEST(Compose, ParallelDivergentWriteRaceRejected) {
  XfddStore s;
  TestOrder order;
  auto p = par(sset("ww2", idx("a"), lit(1)), sset("ww2", idx("a"), lit(2)));
  EXPECT_THROW(to_xfdd(s, order, p), CompileError);
}

TEST(Compose, TestOrderRespectedInMergedDiagram) {
  XfddStore s;
  TestOrder order;
  // Compose two predicates in either order; hash-consing must yield the
  // same diagram because tests are globally ordered.
  auto x = test("a", 1);
  auto y = test("b", 2);
  XfddId d1 = xfdd_par(s, order, pred_to_xfdd(s, order, x),
                       pred_to_xfdd(s, order, y));
  XfddId d2 = xfdd_par(s, order, pred_to_xfdd(s, order, y),
                       pred_to_xfdd(s, order, x));
  EXPECT_EQ(d1, d2);
}

TEST(Compose, RestrictGraftsAtOrderedPosition) {
  XfddStore s;
  TestOrder order;
  // Build a diagram testing field "b", then restrict on "a" (ordered
  // before): the result must have "a" at the root.
  XfddId d = s.branch(TestFV{field_id("b"), 2, kExactMatch}, s.id_leaf(),
                      s.drop_leaf());
  XfddId r = xfdd_restrict(s, order, d, TestFV{field_id("a"), 1, kExactMatch},
                           true);
  const auto& root = s.branch_node(r);
  EXPECT_EQ(std::get<TestFV>(root.test).field,
            std::min(field_id("a"), field_id("b")));
}

TEST(Compose, IfTranslatesToGuardedUnion) {
  XfddStore s;
  TestOrder order;
  Store st;
  auto p = ite(test("a", 1), mod("o", 10), mod("o", 20));
  XfddId d = to_xfdd(s, order, p);
  Packet yes{{"a", 1}};
  Packet no{{"a", 2}};
  EXPECT_EQ(eval_xfdd(s, d, st, yes).packets.begin()->get("o"), 10);
  EXPECT_EQ(eval_xfdd(s, d, st, no).packets.begin()->get("o"), 20);
}

TEST(Compose, ContextPrunesContradictions) {
  XfddStore s;
  TestOrder order;
  // (a=1 & a=2) is unsatisfiable: the diagram must be the drop leaf.
  XfddId d = pred_to_xfdd(s, order, land(test("a", 1), test("a", 2)));
  EXPECT_EQ(d, s.drop_leaf());
  // (a=1 | !(a=1)) is a tautology... modulo absent fields: a=1 fails and
  // !(a=1) passes on packets lacking `a`, so the diagram is not the id leaf
  // but must pass every packet that has `a`.
  XfddId d2 = pred_to_xfdd(s, order, lor(test("a", 1), lnot(test("a", 1))));
  Store st;
  Packet p1{{"a", 1}};
  Packet p2{{"a", 2}};
  EXPECT_EQ(eval_xfdd(s, d2, st, p1).packets.size(), 1u);
  EXPECT_EQ(eval_xfdd(s, d2, st, p2).packets.size(), 1u);
}

TEST(Compose, PrefixTestsInteract) {
  XfddStore s;
  TestOrder order;
  Store st;
  // dstip=10.0.6.0/24 & dstip=10.0.0.0/8 : the /8 is implied inside /24.
  auto x = land(test_cidr("dstip", "10.0.6.0/24"),
                test_cidr("dstip", "10.0.0.0/8"));
  XfddId d = pred_to_xfdd(s, order, x);
  // Only one test should remain (the /8 is implied by the /24).
  EXPECT_EQ(s.reachable_size(d), 3u);  // one branch + id + drop
  // Disjoint prefixes are unsatisfiable.
  auto y = land(test_cidr("dstip", "10.0.6.0/24"),
                test_cidr("dstip", "10.0.7.0/24"));
  EXPECT_EQ(pred_to_xfdd(s, order, y), s.drop_leaf());
}

TEST(Dot, ExportContainsNodes) {
  XfddStore s;
  TestOrder order;
  XfddId d = to_xfdd(s, order, ite(test("a", 1), mod("o", 1), filter(drop())));
  std::string dot = xfdd_to_dot(s, d);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("a = 1"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

}  // namespace
}  // namespace snap
