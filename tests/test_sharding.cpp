// State sharding (§7.3 / Appendix C): rewriting s[inport] accesses into
// per-port shards must preserve semantics and let the optimizer distribute
// shards across the network.
#include <gtest/gtest.h>

#include "analysis/depgraph.h"
#include "apps/apps.h"
#include "compiler/pipeline.h"
#include "compiler/sharding.h"
#include "lang/eval.h"
#include "topo/gen.h"
#include "util/status.h"
#include "xfdd/compose.h"

namespace snap {
namespace {

using namespace snap::dsl;

TEST(Sharding, PreservesSemanticsPerPort) {
  auto original = sinc("sh-cnt", idx("inport")) >>
                  ite(stest("sh-cnt", idx("inport"), lit(2)),
                      mod("outport", 9), filter(id()));
  auto sharded = shard_by_inport(original, "sh-cnt", {1, 2, 3});

  Store st_orig, st_shard;
  for (PortId port : {1, 2, 2, 3, 2}) {
    Packet pkt{{"inport", port}};
    auto r1 = eval(original, st_orig, pkt);
    auto r2 = eval(sharded, st_shard, pkt);
    // Same packet behaviour...
    ASSERT_EQ(r1.packets, r2.packets) << "port " << port;
    st_orig = r1.store;
    st_shard = r2.store;
  }
  // ...and the sharded counters partition the original counter.
  EXPECT_EQ(st_orig.get(state_var_id("sh-cnt"), {2}), 3);
  EXPECT_EQ(st_shard.get(state_var_id(shard_name("sh-cnt", 2)), {2}), 3);
  EXPECT_EQ(st_shard.get(state_var_id(shard_name("sh-cnt", 1)), {1}), 1);
  EXPECT_EQ(st_shard.get(state_var_id(shard_name("sh-cnt", 1)), {2}), 0);
}

TEST(Sharding, RejectsNonInportIndexedVariables) {
  auto p = sinc("sh-bad", idx("srcip"));
  EXPECT_THROW(shard_by_inport(p, "sh-bad", {1, 2}), CompileError);
}

TEST(Sharding, UntouchedVariablesPassThrough) {
  auto p = sinc("sh-other", idx("srcip")) >> sinc("sh-t", idx("inport"));
  auto sharded = shard_by_inport(p, "sh-t", {1});
  Packet pkt{{"inport", 1}, {"srcip", 5}};
  Store st;
  auto r = eval(sharded, st, pkt);
  EXPECT_EQ(r.store.get(state_var_id("sh-other"), {5}), 1);
  EXPECT_EQ(r.store.get(state_var_id(shard_name("sh-t", 1)), {1}), 1);
}

TEST(Sharding, ShardsPlacedIndependentlyNearTheirPorts) {
  // A per-inport counter over a line topology: unsharded, one switch must
  // hold the whole array; sharded, each shard can sit at its own ingress.
  Topology topo("line4s", 4);
  topo.add_duplex(0, 1, 10);
  topo.add_duplex(1, 2, 10);
  topo.add_duplex(2, 3, 10);
  topo.attach_port(1, 0);
  topo.attach_port(2, 3);

  auto egress = apps::assign_egress({{"10.0.1.0/24", 1}, {"10.0.2.0/24", 2}});
  auto base = sinc("sh-d", idx("inport")) >> egress;
  auto sharded = shard_by_inport(base, "sh-d", {1, 2});

  TrafficMatrix tm;
  tm.set_demand(1, 2, 1.0);
  tm.set_demand(2, 1, 1.0);

  Compiler c1(topo, tm);
  CompileResult unsharded = c1.compile(base);
  int loc = unsharded.pr.placement.at(state_var_id("sh-d"));
  EXPECT_GE(loc, 0);  // single location serving both directions

  Compiler c2(topo, tm);
  CompileResult r = c2.compile(sharded);
  int loc1 = r.pr.placement.at(state_var_id(shard_name("sh-d", 1)));
  int loc2 = r.pr.placement.at(state_var_id(shard_name("sh-d", 2)));
  // Each shard must lie on its own ingress's path (on a line every switch
  // does, so placements are tie-broken arbitrarily — the point is that the
  // two shards are placed *independently*, which the unsharded program
  // cannot do).
  const auto& p12 = r.pr.routing.paths.at({1, 2});
  const auto& p21 = r.pr.routing.paths.at({2, 1});
  EXPECT_NE(std::find(p12.begin(), p12.end(), loc1), p12.end());
  EXPECT_NE(std::find(p21.begin(), p21.end(), loc2), p21.end());

  // With per-switch capacity 1, the sharded program remains placeable —
  // shards spread over distinct switches.
  CompilerOptions opts;
  opts.scalable.state_capacity = 1;
  Compiler c3(topo, tm);
  Compiler c3b(topo, tm, opts);
  CompileResult capped = c3b.compile(sharded);
  EXPECT_NE(capped.pr.placement.at(state_var_id(shard_name("sh-d", 1))),
            capped.pr.placement.at(state_var_id(shard_name("sh-d", 2))));
}

TEST(Sharding, WorksThroughTheFullPipelineOnCampus) {
  Topology topo = make_figure2_campus();
  std::vector<std::pair<std::string, PortId>> subnets;
  for (int i = 1; i <= 6; ++i) {
    subnets.emplace_back("10.0." + std::to_string(i) + ".0/24", i);
  }
  auto base = apps::per_port_counter("sh-m") >> apps::assign_egress(subnets);
  std::vector<PortId> ports{1, 2, 3, 4, 5, 6};
  auto sharded = shard_by_inport(base, "sh-m.count", ports);
  TrafficMatrix tm = gravity_traffic(topo, 20.0, 13);
  Compiler compiler(topo, tm);
  CompileResult r = compiler.compile(sharded);
  // All six shards placed; at least two distinct locations used (the
  // optimizer is free to spread state that unsharded would centralize).
  std::set<int> locations;
  for (PortId p : ports) {
    int loc = r.pr.placement.at(state_var_id(shard_name("sh-m.count", p)));
    ASSERT_GE(loc, 0);
    locations.insert(loc);
  }
  EXPECT_GE(locations.size(), 2u);
}

}  // namespace
}  // namespace snap
