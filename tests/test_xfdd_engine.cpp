// The memoized xFDD apply engine (xfdd/engine.h): computed tables must
// collapse shared-subtree re-expansion without changing a single output
// byte, the intern table must survive hash collisions by full node
// equality, the exporters must emit shared subgraphs once, and the Session
// must expose per-event EngineStats with a warm-started retained engine.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/apps.h"
#include "compiler/session.h"
#include "topo/gen.h"
#include "topo/traffic.h"
#include "util/status.h"
#include "xfdd/compose.h"
#include "xfdd/dot.h"
#include "xfdd/engine.h"

namespace snap {
namespace {

using namespace snap::dsl;

// and_{i<depth} (xf<i> = 0 | xf<i> = 1): a diamond-chain diagram with
// ~2*depth+2 nodes but 2^depth accepting paths — the shape that is
// exponential to walk as a tree and linear with computed tables.
PredPtr diamond_pred(int depth, const std::string& stem = "df") {
  PredPtr p;
  for (int i = 0; i < depth; ++i) {
    std::string f = stem + std::to_string(i);
    PredPtr level = lor(test(f, 0), test(f, 1));
    p = p ? land(p, level) : level;
  }
  return p;
}

std::string canonical_digest(const XfddStore& s, XfddId root) {
  XfddStore canon;
  XfddId r = xfdd_import(canon, s, root);
  return std::to_string(r) + "\n" + canon.to_string(r);
}

// ---- intern collisions -----------------------------------------------------

TEST(XfddStoreIntern, CollisionsResolvedByFullNodeEquality) {
  // Every node hashes into one bucket: correctness now rests entirely on
  // the full equality comparison (hash-equal != node-equal).
  XfddStore s = XfddStore::with_degraded_hash_for_testing();
  FieldId f = field_id("coll_f");
  std::vector<XfddId> ids;
  for (Value v = 0; v < 24; ++v) {
    ids.push_back(
        s.branch(TestFV{f, v, kExactMatch}, s.id_leaf(), s.drop_leaf()));
  }
  // Two distinct nodes forced into one bucket must never share an id.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      EXPECT_NE(ids[i], ids[j]) << i << " vs " << j;
    }
  }
  // Re-interning an equal node must find the original through the crowded
  // bucket, not allocate a duplicate.
  std::size_t before = s.size();
  for (Value v = 0; v < 24; ++v) {
    EXPECT_EQ(s.branch(TestFV{f, v, kExactMatch}, s.id_leaf(), s.drop_leaf()),
              ids[static_cast<std::size_t>(v)]);
  }
  EXPECT_EQ(s.size(), before);
  EXPECT_EQ(s.leaf(ActionSet::make_id()), s.id_leaf());
  EXPECT_EQ(s.leaf(ActionSet::make_drop()), s.drop_leaf());
}

TEST(XfddStoreIntern, DegradedHashCompilesPolicyIdentically) {
  PolPtr p = apps::dns_tunnel_detect("collide", "10.0.1.0/24", 4);
  TestOrder order = DependencyGraph::build(p).test_order();
  XfddStore normal;
  XfddId rn = to_xfdd(normal, order, p);
  XfddStore degraded = XfddStore::with_degraded_hash_for_testing();
  XfddId rd = to_xfdd(degraded, order, p);
  EXPECT_EQ(canonical_digest(normal, rn), canonical_digest(degraded, rd));
}

// ---- exporters stay linear on shared DAGs ----------------------------------

TEST(XfddExport, SharedSubgraphsEmittedOnce) {
  PolPtr p = ite(diamond_pred(10), mod("outport", 1), mod("outport", 2));
  TestOrder order = DependencyGraph::build(p).test_order();
  XfddEngine e(order);
  XfddId root = e.policy(p);
  std::size_t nodes = e.store().reachable_size(root);
  ASSERT_LT(nodes, 50u);  // the DAG is small; only its path count explodes

  std::string text = e.store().to_string(root);
  std::size_t lines = std::count(text.begin(), text.end(), '\n');
  EXPECT_EQ(lines, nodes);  // one line per distinct node

  std::string dot = xfdd_to_dot(e.store(), root);
  std::size_t decls = 0;
  for (std::size_t at = dot.find("label="); at != std::string::npos;
       at = dot.find("label=", at + 1)) {
    ++decls;
  }
  EXPECT_EQ(decls, nodes);  // one labelled declaration per distinct node
}

// ---- computed tables -------------------------------------------------------

TEST(XfddEngine, MemoizationCollapsesDiamondsByteIdentically) {
  PolPtr p = ite(diamond_pred(11), mod("outport", 1), mod("outport", 2));
  TestOrder order = DependencyGraph::build(p).test_order();

  XfddEngine memo(order, {.memoize = true});
  XfddId r_memo = memo.policy(p);
  XfddEngine naive(order, {.memoize = false});
  XfddId r_naive = naive.policy(p);

  EXPECT_EQ(canonical_digest(memo.store(), r_memo),
            canonical_digest(naive.store(), r_naive));
  EXPECT_EQ(naive.stats().hits(), 0u);
  EXPECT_GT(memo.stats().hits(), 0u);
  EXPECT_GT(memo.stats().neg_hits, 0u);  // ! of the diamond condition
  // The acceptance bar: at least 5x fewer node expansions than naive.
  EXPECT_GE(naive.stats().expansions, 5 * memo.stats().expansions);
}

TEST(XfddEngine, RestrictAndNegCachesHitOnSharedSubtrees) {
  TestOrder order;
  XfddEngine e(order);
  XfddId d = e.pred(diamond_pred(10));
  EngineStats before = e.stats();
  // A test ordered after the whole chain recurses through every node; the
  // diamond forces revisits that must come from the restrict table.
  snap::Test late = TestFV{field_id("zz_late"), 1, kExactMatch};
  XfddId r = e.restrict(d, late, true);
  EngineStats after = e.stats().since(before);
  EXPECT_GT(after.restrict_hits, 0u);
  EXPECT_NE(r, d);

  XfddEngine naive(order, {.memoize = false});
  XfddId dn = naive.pred(diamond_pred(10));
  XfddId rn = naive.restrict(dn, late, true);
  EXPECT_EQ(canonical_digest(e.store(), r), canonical_digest(naive.store(), rn));

  // Involution through the neg table: ⊖⊖d re-interns to d itself.
  EXPECT_EQ(e.neg(e.neg(d)), d);
}

TEST(XfddEngine, WarmRecompileIsAllCacheHits) {
  PolPtr p = apps::dns_tunnel_detect("warm", "10.0.1.0/24", 4);
  TestOrder order = DependencyGraph::build(p).test_order();
  XfddEngine e(order);
  XfddId first = e.policy(p);
  EngineStats cold = e.stats();
  XfddId second = e.policy(p);
  EngineStats warm = e.stats().since(cold);
  EXPECT_EQ(first, second);
  EXPECT_EQ(warm.expansions, 0u);  // every op answered from the tables
  EXPECT_GT(warm.hits(), 0u);
}

TEST(XfddEngine, SetOrderKeepsOrDropsCachesByRanks) {
  PolPtr p = apps::stateful_firewall("ord", "10.0.1.0/24");
  DependencyGraph deps = DependencyGraph::build(p);
  TestOrder order = deps.test_order();
  XfddEngine e(order);
  XfddId r1 = e.policy(p);
  EngineStats cold = e.stats();

  e.set_order(order);  // identical ranks: tables survive
  EXPECT_EQ(e.policy(p), r1);
  EXPECT_EQ(e.stats().since(cold).expansions, 0u);

  // A genuinely different rank vector invalidates; the rebuilt result must
  // still match a fresh engine under the new order.
  std::vector<int> flipped;
  for (std::size_t i = 0; i < 8; ++i) {
    flipped.push_back(static_cast<int>(8 - i));
  }
  TestOrder other(flipped);
  e.set_order(other);
  XfddId r2 = e.policy(p);
  XfddEngine fresh(other);
  EXPECT_EQ(canonical_digest(e.store(), r2),
            canonical_digest(fresh.store(), fresh.policy(p)));
}

// ---- Session integration ---------------------------------------------------

PolPtr session_program(const std::string& prefix) {
  std::vector<std::pair<std::string, PortId>> subnets;
  for (int i = 1; i <= 6; ++i) {
    subnets.emplace_back("10.0." + std::to_string(i) + ".0/24", i);
  }
  return apps::dns_tunnel_detect(prefix, "10.0.6.0/24", 2) >>
         apps::assign_egress(subnets);
}

TEST(SessionEngine, EventResultExposesStatsAndWarmStarts) {
  Session s(make_figure2_campus(),
            gravity_traffic(make_figure2_campus(), 20.0, 1));
  EventResult cold = s.full_compile(session_program("es1"));
  EXPECT_GT(cold.engine.expansions, 0u);
  EXPECT_GT(cold.engine.nodes, 0u);
  std::string cold_digest = canonical_digest(*s.result().store,
                                             s.result().root);

  // Same program again: P1 recomputes the same ranks, so the retained
  // engine keeps its tables and P2 is answered from them.
  EventResult warm = s.set_policy(session_program("es1"));
  EXPECT_TRUE(warm.ran(PhaseId::kP2Xfdd));
  EXPECT_GT(warm.engine.hits(), 0u);
  EXPECT_LT(warm.engine.expansions, cold.engine.expansions);
  EXPECT_EQ(canonical_digest(*s.result().store, s.result().root),
            cold_digest);

  // Events that skip P2 report zeroed engine counters.
  EventResult te = s.set_traffic(
      gravity_traffic(make_figure2_campus(), 20.0, 5));
  EXPECT_FALSE(te.ran(PhaseId::kP2Xfdd));
  EXPECT_EQ(te.engine.expansions, 0u);
  EXPECT_EQ(te.engine.hits(), 0u);
}

TEST(SessionEngine, ParallelP2ReportsWorkerStatsAndMatchesSerial) {
  CompilerOptions par_opts;
  par_opts.threads = 2;
  Session par(make_figure2_campus(),
              gravity_traffic(make_figure2_campus(), 20.0, 1), par_opts);
  EventResult ev = par.full_compile(session_program("es2"));
  EXPECT_GT(ev.engine.expansions, 0u);

  Session ser(make_figure2_campus(),
              gravity_traffic(make_figure2_campus(), 20.0, 1));
  ser.full_compile(session_program("es2"));
  EXPECT_EQ(canonical_digest(*par.result().store, par.result().root),
            canonical_digest(*ser.result().store, ser.result().root));
}

}  // namespace
}  // namespace snap
