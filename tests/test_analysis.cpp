// State dependency analysis (§4.1) and packet-state mapping (§4.3).
#include <gtest/gtest.h>

#include "analysis/depgraph.h"
#include "analysis/psmap.h"
#include "xfdd/compose.h"

namespace snap {
namespace {

using namespace snap::dsl;

PolPtr dns_tunnel(Value threshold) {
  auto dns = land(test_cidr("dstip", "10.0.6.0/24"), test("srcport", 53));
  return ite(dns,
             sset("a-orphan", idx("dstip", "dns.rdata"), lit(kTrue)) >>
                 (sinc("a-susp", idx("dstip")) >>
                  ite(stest("a-susp", idx("dstip"), lit(threshold)),
                      sset("a-blacklist", idx("dstip"), lit(kTrue)),
                      filter(id()))),
             ite(land(test_cidr("srcip", "10.0.6.0/24"),
                      stest("a-orphan", idx("srcip", "dstip"), lit(kTrue))),
                 sset("a-orphan", idx("srcip", "dstip"), lit(kFalse)) >>
                     sdec("a-susp", idx("srcip")),
                 filter(id())));
}

TEST(DepGraph, DnsTunnelOrdering) {
  auto g = DependencyGraph::build(dns_tunnel(2));
  StateVarId orphan = state_var_id("a-orphan");
  StateVarId susp = state_var_id("a-susp");
  StateVarId blacklist = state_var_id("a-blacklist");
  EXPECT_EQ(g.vars().size(), 3u);
  // The paper: blacklist depends on susp-client, itself dependent on orphan.
  EXPECT_LT(g.rank(orphan), g.rank(susp));
  EXPECT_LT(g.rank(susp), g.rank(blacklist));
  // Self-loops (orphan test guards orphan write) do not tie distinct vars.
  EXPECT_TRUE(g.tied_pairs().empty());
  auto deps = g.dep_pairs();
  EXPECT_TRUE(std::count(deps.begin(), deps.end(),
                         std::pair<StateVarId, StateVarId>(orphan, susp)));
  EXPECT_TRUE(std::count(deps.begin(), deps.end(),
                         std::pair<StateVarId, StateVarId>(susp, blacklist)));
}

TEST(DepGraph, ParallelIntroducesNoDependencies) {
  auto p = par(sinc("b-x", idx("srcip")), sinc("b-y", idx("srcip")));
  auto g = DependencyGraph::build(p);
  EXPECT_TRUE(g.dep_pairs().empty());
  EXPECT_TRUE(g.tied_pairs().empty());
}

TEST(DepGraph, SequentialReadThenWrite) {
  auto p = filter(stest("c-r", idx("srcip"), lit(1))) >>
           sset("c-w", idx("srcip"), lit(1));
  auto g = DependencyGraph::build(p);
  StateVarId r = state_var_id("c-r");
  StateVarId w = state_var_id("c-w");
  EXPECT_LT(g.rank(r), g.rank(w));
}

TEST(DepGraph, AtomicTiesVariables) {
  auto p = atomic(sset("d-ip", idx("inport"), fld("srcip")) >>
                  sset("d-port", idx("inport"), fld("dstport")));
  auto g = DependencyGraph::build(p);
  auto tied = g.tied_pairs();
  ASSERT_EQ(tied.size(), 1u);
  EXPECT_EQ(g.rank(state_var_id("d-ip")), g.rank(state_var_id("d-port")));
}

TEST(DepGraph, MutualDependencyFormsScc) {
  // x read before y write, and y read before x write -> one SCC.
  auto p = ite(stest("e-x", idx("a"), lit(1)), sinc("e-y", idx("a")),
               filter(id())) >>
           ite(stest("e-y", idx("a"), lit(1)), sinc("e-x", idx("a")),
               filter(id()));
  auto g = DependencyGraph::build(p);
  EXPECT_EQ(g.component(state_var_id("e-x")),
            g.component(state_var_id("e-y")));
  EXPECT_FALSE(g.tied_pairs().empty());
}

TEST(DepGraph, TestOrderFollowsRanks) {
  auto g = DependencyGraph::build(dns_tunnel(2));
  TestOrder order = g.test_order();
  TestState t_orphan{state_var_id("a-orphan"), dsl::idx("dstip"),
                     Expr::of_value(1)};
  TestState t_black{state_var_id("a-blacklist"), dsl::idx("dstip"),
                    Expr::of_value(1)};
  EXPECT_TRUE(order.before(snap::Test{t_orphan}, snap::Test{t_black}));
  EXPECT_FALSE(order.before(snap::Test{t_black}, snap::Test{t_orphan}));
}

// ------------------------------------------------------------ psmap

PolPtr assign_egress_2ports() {
  return ite(test_cidr("dstip", "10.0.1.0/24"), mod("outport", 1),
             ite(test_cidr("dstip", "10.0.2.0/24"), mod("outport", 2),
                 filter(drop())));
}

TEST(PsMap, StatesMappedToEgressPorts) {
  // Count packets toward port 1 only.
  auto p = ite(test_cidr("dstip", "10.0.1.0/24"), sinc("f-cnt", idx("srcip")),
               filter(id())) >>
           assign_egress_2ports();
  auto g = DependencyGraph::build(p);
  TestOrder order = g.test_order();
  XfddStore s;
  XfddId d = to_xfdd(s, order, p);
  auto map = packet_state_map(s, d, {1, 2}, order);
  StateVarId cnt = state_var_id("f-cnt");
  EXPECT_TRUE(map.all_vars.count(cnt));
  // Flows to port 1 need the counter; flows to port 2 do not.
  auto to1 = map.states_for(1, 1);
  auto to1b = map.states_for(2, 1);
  auto to2 = map.states_for(1, 2);
  EXPECT_TRUE(std::count(to1b.begin(), to1b.end(), cnt));
  EXPECT_TRUE(std::count(to1.begin(), to1.end(), cnt));
  EXPECT_TRUE(to2.empty());
}

TEST(PsMap, InportTestsNarrowIngress) {
  // Only packets entering at port 3 touch the state.
  auto p = ite(test("inport", 3), sinc("g-cnt", idx("srcip")), filter(id())) >>
           assign_egress_2ports();
  auto g = DependencyGraph::build(p);
  TestOrder order = g.test_order();
  XfddStore s;
  XfddId d = to_xfdd(s, order, p);
  auto map = packet_state_map(s, d, {1, 2, 3}, order);
  StateVarId cnt = state_var_id("g-cnt");
  auto from3 = map.states_for(3, 1);
  EXPECT_TRUE(std::count(from3.begin(), from3.end(), cnt));
  EXPECT_TRUE(map.states_for(1, 2).empty());
  EXPECT_TRUE(map.states_for(2, 1).empty());
}

TEST(PsMap, StateReadOnDropPathStillCounts) {
  // A stateful firewall drop decision requires reaching the state.
  auto p = ite(stest("h-est", idx("dstip", "srcip"), lit(kTrue)),
               assign_egress_2ports(), filter(drop()));
  auto g = DependencyGraph::build(p);
  TestOrder order = g.test_order();
  XfddStore s;
  XfddId d = to_xfdd(s, order, p);
  auto map = packet_state_map(s, d, {1, 2}, order);
  StateVarId est = state_var_id("h-est");
  // Both the pass (to each egress) and the drop path need the variable.
  auto s12 = map.states_for(1, 2);
  EXPECT_TRUE(std::count(s12.begin(), s12.end(), est));
  EXPECT_TRUE(map.flow_states.count({1, kPortAny}));
}

TEST(PsMap, OrderedByDependencyRank) {
  auto p = dns_tunnel(2) >> assign_egress_2ports();
  auto g = DependencyGraph::build(p);
  TestOrder order = g.test_order();
  XfddStore s;
  XfddId d = to_xfdd(s, order, p);
  auto map = packet_state_map(s, d, {1, 2}, order);
  for (const auto& [uv, states] : map.flow_states) {
    for (std::size_t i = 0; i + 1 < states.size(); ++i) {
      EXPECT_LE(order.state_rank(states[i]), order.state_rank(states[i + 1]));
    }
  }
}

}  // namespace
}  // namespace snap
