// The parallelism contract of CompilerOptions::threads: any thread count
// produces byte-identical compiler output. P2's parallel composition is
// canonicalized by xfdd_import (first-visit DFS numbering in a fresh
// store), and P6 assembles switches into per-switch slots, so xFDD node
// ids, per-switch NetASM programs, slice statistics and placements must
// match the serial path exactly across --threads 1/2/8.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/apps.h"
#include "compiler/pipeline.h"
#include "netasm/assembler.h"
#include "topo/gen.h"
#include "topo/traffic.h"
#include "util/thread_pool.h"
#include "xfdd/compose.h"

namespace snap {
namespace {

using namespace snap::dsl;

PolPtr evaluation_policy(const Topology& topo) {
  auto subnets = apps::default_subnets(topo.ports());
  PortId cs_port = topo.ports().back();
  std::string cs_subnet;
  for (const auto& [subnet, port] : subnets) {
    if (port == cs_port) cs_subnet = subnet;
  }
  return dsl::filter(apps::assumption(subnets)) >>
         (apps::dns_tunnel_detect("det", cs_subnet, 10) >>
          apps::assign_egress(subnets));
}

// Everything P2 and P6 produce, byte for byte: canonical root id, the full
// diagram serialization (node ids included), slice statistics, placement,
// and each switch's disassembled NetASM program.
std::string full_digest(const Topology& topo, const CompileResult& r) {
  std::string d = "root=" + std::to_string(r.root) + '\n';
  d += r.store->to_string(r.root);
  d += "nodes=" + std::to_string(r.xfdd_nodes) + '\n';
  for (const SwitchSlice& s : r.slices) {
    d += "slice " + std::to_string(s.sw) + ' ' +
         std::to_string(s.instructions) + ' ' +
         std::to_string(s.state_tests) + ' ' + std::to_string(s.escapes) +
         ' ' + std::to_string(s.state_writes) + '\n';
  }
  for (const auto& [var, sw] : r.pr.placement.switch_of) {
    d += state_var_name(var) + " -> " + std::to_string(sw) + '\n';
  }
  for (int sw = 0; sw < topo.num_switches(); ++sw) {
    netasm::Program prog =
        netasm::assemble(*r.store, r.root, r.pr.placement, sw);
    d += "== switch " + std::to_string(sw) + '\n';
    d += prog.disassemble();
  }
  return d;
}

TEST(Determinism, CompilerOutputIdenticalAcrossThreadCounts) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 12.0, 7);
  PolPtr prog = evaluation_policy(topo);

  std::string baseline;
  for (int threads : {1, 2, 8}) {
    CompilerOptions opts;
    opts.threads = threads;
    Compiler compiler(topo, tm, opts);
    CompileResult r = compiler.compile(prog);
    std::string digest = full_digest(topo, r);
    if (threads == 1) {
      baseline = digest;
      ASSERT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(digest, baseline) << "threads=" << threads;
    }
  }
}

TEST(Determinism, IspTopologyRulesIdenticalAcrossThreadCounts) {
  Topology topo = make_isp("det-isp", 30, 110, 3);
  TrafficMatrix tm = gravity_traffic(
      topo, 2.0 * static_cast<double>(topo.ports().size()), 5);
  PolPtr prog = evaluation_policy(topo);

  std::string baseline;
  for (int threads : {1, 8}) {
    CompilerOptions opts;
    opts.threads = threads;
    Compiler compiler(topo, tm, opts);
    CompileResult r = compiler.compile(prog);
    std::string digest = full_digest(topo, r);
    if (baseline.empty()) {
      baseline = digest;
    } else {
      EXPECT_EQ(digest, baseline) << "threads=" << threads;
    }
  }
}

TEST(Determinism, ParallelComposeMatchesSerialAtComposeLevel) {
  Topology topo = make_figure2_campus();
  PolPtr prog = evaluation_policy(topo);
  DependencyGraph deps = DependencyGraph::build(prog);
  TestOrder order = deps.test_order();

  XfddStore serial_store;
  XfddId serial_root;
  {
    XfddStore scratch;
    XfddId raw = to_xfdd(scratch, order, prog);
    serial_root = xfdd_import(serial_store, scratch, raw);
  }
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    XfddStore par_store;
    XfddId par_root = to_xfdd_parallel(par_store, order, prog, pool);
    EXPECT_EQ(par_root, serial_root) << "threads=" << threads;
    EXPECT_EQ(par_store.to_string(par_root),
              serial_store.to_string(serial_root))
        << "threads=" << threads;
  }
}

TEST(Determinism, ImportIsIdempotentAndCanonical) {
  Topology topo = make_figure2_campus();
  PolPtr prog = evaluation_policy(topo);
  DependencyGraph deps = DependencyGraph::build(prog);
  TestOrder order = deps.test_order();

  XfddStore scratch;
  XfddId raw = to_xfdd(scratch, order, prog);
  XfddStore once, twice;
  XfddId r1 = xfdd_import(once, scratch, raw);
  XfddId r2 = xfdd_import(twice, once, r1);
  // Re-importing a canonical store is the identity on ids and drops
  // nothing: the canonical store holds exactly the reachable nodes.
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(once.to_string(r1), twice.to_string(r2));
  // The canonical store holds only the reachable diagram (plus the two
  // pre-interned {id}/{drop} leaves, which may be unreachable).
  EXPECT_LE(once.size(), once.reachable_size(r1) + 2);
  EXPECT_GE(once.size(), once.reachable_size(r1));
}

}  // namespace
}  // namespace snap
