// The traffic engine (src/sim): workload determinism, serial-vs-sharded
// byte equivalence across the policy corpus and worker counts, forced
// cross-worker forwarding, the flat TrafficMatrix, and the per-delta
// instruction-stat reset.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "compiler/session.h"
#include "dataplane/network.h"
#include "rulegen/delta.h"
#include "sim/conflict.h"
#include "sim/engine.h"
#include "sim/workload.h"
#include "topo/gen.h"
#include "util/status.h"
#include "xfdd/compose.h"

namespace snap {
namespace {

using namespace snap::dsl;

void expect_same_deliveries(const std::vector<Network::Delivery>& a,
                            const std::vector<Network::Delivery>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].outport, b[i].outport) << "delivery " << i;
    ASSERT_TRUE(a[i].packet == b[i].packet)
        << "delivery " << i << ": " << a[i].packet.to_string() << " vs "
        << b[i].packet.to_string();
  }
}

// The shared 11-policy evaluation corpus (thresholds low so terminal
// branches trigger, egress included so deliveries are nonempty).
std::vector<apps::CorpusApp> corpus(const Topology& topo) {
  return apps::evaluation_corpus("sim",
                                 apps::default_subnets(topo.ports()));
}

TEST(TrafficMatrixFlat, SortedVectorSemantics) {
  TrafficMatrix tm;
  tm.set_demand(5, 1, 2.0);
  tm.set_demand(1, 5, 1.0);
  tm.set_demand(3, 2, 4.0);
  tm.set_demand(5, 1, 2.5);  // overwrite, not duplicate
  EXPECT_DOUBLE_EQ(tm.demand(1, 5), 1.0);
  EXPECT_DOUBLE_EQ(tm.demand(5, 1), 2.5);
  EXPECT_DOUBLE_EQ(tm.demand(3, 2), 4.0);
  EXPECT_DOUBLE_EQ(tm.demand(2, 3), 0.0);
  EXPECT_DOUBLE_EQ(tm.total(), 7.5);
  ASSERT_EQ(tm.demands().size(), 3u);
  EXPECT_TRUE(std::is_sorted(tm.demands().begin(), tm.demands().end(),
                             [](const auto& a, const auto& b) {
                               return a.first < b.first;
                             }));
}

TEST(Workload, DeterministicBySeed) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 3);
  const sim::Scenario* mixed = sim::find_scenario("mixed");
  ASSERT_NE(mixed, nullptr);
  sim::Workload a = sim::WorkloadGen(topo, tm, 11).generate(*mixed, 400);
  sim::Workload b = sim::WorkloadGen(topo, tm, 11).generate(*mixed, 400);
  ASSERT_EQ(a.packets.size(), 400u);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    ASSERT_EQ(a.packets[i].inport, b.packets[i].inport) << i;
    ASSERT_TRUE(a.packets[i].pkt == b.packets[i].pkt) << i;
  }
  sim::Workload c = sim::WorkloadGen(topo, tm, 12).generate(*mixed, 400);
  bool any_diff = false;
  for (std::size_t i = 0; i < c.packets.size(); ++i) {
    any_diff |= !(a.packets[i].pkt == c.packets[i].pkt) ||
                a.packets[i].inport != c.packets[i].inport;
  }
  EXPECT_TRUE(any_diff) << "different seeds produced identical traces";
}

TEST(Workload, EveryAppHasACataloguedScenario) {
  for (const auto& app : apps::registry()) {
    const sim::Scenario* sc = sim::find_scenario(app.workload);
    ASSERT_NE(sc, nullptr) << app.name << " -> " << app.workload;
    EXPECT_EQ(sim::scenario_for_app(app.name).name, sc->name);
  }
  EXPECT_THROW(sim::scenario_for_app("no-such-app"), Error);
}

TEST(Workload, PacketsCarryConsistentBaseFields) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 3);
  for (const sim::Scenario& sc : sim::scenario_catalogue()) {
    sim::Workload wl = sim::WorkloadGen(topo, tm, 9).generate(sc, 200);
    ASSERT_EQ(wl.packets.size(), 200u) << sc.name;
    for (const auto& sp : wl.packets) {
      // Every packet enters at a real OBS port and carries the 5-tuple the
      // corpus policies index on.
      EXPECT_NO_THROW(topo.port_switch(sp.inport)) << sc.name;
      for (const char* f :
           {"srcip", "dstip", "srcport", "dstport", "proto", "inport",
            "sid"}) {
        EXPECT_TRUE(sp.pkt.get(f).has_value()) << sc.name << " lacks " << f;
      }
      EXPECT_EQ(sp.pkt.get("inport"), static_cast<Value>(sp.inport));
    }
  }
}

class SimCorpus : public ::testing::TestWithParam<int> {};

TEST_P(SimCorpus, ShardedMatchesSerialAcrossWorkerCounts) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 1);
  auto c = corpus(topo)[static_cast<std::size_t>(GetParam())];

  Session session(topo, tm);
  EventResult ev = session.full_compile(c.policy);
  sim::Workload wl = sim::WorkloadGen(topo, tm, 42).generate(
      sim::scenario_for_app(c.name), 400);

  Network serial(ev.delta);
  auto serial_out = serial.inject_batch(sim::as_injection_batch(wl));
  Store serial_state = serial.merged_state();

  // The determinism guarantee must hold for every (worker count, ring
  // burst size) combination — partial bursts, idle flushes and full
  // kMaxTaskBurst messages all replay the serial order byte-identically.
  for (int workers : {1, 2, 8}) {
    for (int burst : {1, 8, 64}) {
      sim::EngineOptions opts;
      opts.workers = workers;
      opts.burst = burst;
      opts.deterministic = true;
      sim::TrafficEngine engine(ev.delta, opts);
      auto engine_out = engine.run(wl);
      ASSERT_NO_FATAL_FAILURE(expect_same_deliveries(serial_out,
                                                     engine_out))
          << c.name << " at " << workers << " workers, burst " << burst;
      ASSERT_TRUE(serial_state == engine.network().merged_state())
          << c.name << " state diverged at " << workers << " workers, burst "
          << burst << "\nserial:\n" << serial_state.to_string()
          << "engine:\n" << engine.network().merged_state().to_string();
      // Faithful replication extends to hop accounting and to per-switch
      // instruction counts (the decoded/direct fast paths and the
      // reference interpreter count in the same units: atomic markers
      // excluded).
      EXPECT_EQ(serial.total_hops(), engine.network().total_hops())
          << c.name << " at " << workers << " workers, burst " << burst;
      EXPECT_EQ(engine.stats().packets, wl.packets.size());
      EXPECT_EQ(engine.stats().burst, burst);
      // Masks ride in tasks and the rings are sized to the window, so the
      // dispatch/completion loop must not touch the heap per packet.
      EXPECT_EQ(engine.stats().steady_allocs, 0u)
          << c.name << " at " << workers << " workers, burst " << burst;
      for (int sw = 0; sw < topo.num_switches(); ++sw) {
        EXPECT_EQ(serial.switch_at(sw).instructions_executed(),
                  engine.stats()
                      .per_switch_instructions[static_cast<std::size_t>(
                          sw)])
            << c.name << " switch " << sw << " at " << workers
            << " workers, burst " << burst;
      }
    }
  }
}

TEST_P(SimCorpus, ShardMapsPreserveSerialEquivalence) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 1);
  auto c = corpus(topo)[static_cast<std::size_t>(GetParam())];

  Session session(topo, tm);
  EventResult ev = session.full_compile(c.policy);
  sim::Workload wl = sim::WorkloadGen(topo, tm, 42).generate(
      sim::scenario_for_app(c.name), 400);

  Network serial(ev.delta);
  auto serial_out = serial.inject_batch(sim::as_injection_batch(wl));
  Store serial_state = serial.merged_state();

  // Determinism must be a property of the scheduler alone: any switch→worker
  // map — the compiler's locality plan, the sw % W baseline, or a map built
  // to scatter every conflict component across workers — replays the serial
  // trajectory byte-identically. Only throughput may differ.
  for (int workers : {1, 2, 8}) {
    sim::EngineOptions lopts;
    lopts.workers = workers;
    lopts.deterministic = true;
    lopts.shard = sim::ShardMode::kLocality;
    sim::TrafficEngine locality(ev.delta, lopts);
    ASSERT_EQ(locality.shard_plan().worker.size(),
              static_cast<std::size_t>(topo.num_switches()));

    // Adversarial map: rotate each locality assignment by the switch id so
    // co-located conflict components are smeared over all workers.
    std::vector<int> adversarial = locality.shard_plan().worker;
    for (std::size_t sw = 0; sw < adversarial.size(); ++sw) {
      adversarial[sw] =
          (adversarial[sw] + static_cast<int>(sw)) % workers;
    }

    sim::EngineOptions ropts = lopts;
    ropts.shard = sim::ShardMode::kRoundRobin;
    sim::TrafficEngine round_robin(ev.delta, ropts);

    sim::EngineOptions aopts = lopts;
    aopts.shard = sim::ShardMode::kExplicit;
    aopts.shard_map = adversarial;
    sim::TrafficEngine scattered(ev.delta, aopts);

    struct Case {
      const char* label;
      sim::TrafficEngine* engine;
    } cases[] = {{"locality", &locality},
                 {"round_robin", &round_robin},
                 {"adversarial", &scattered}};
    for (const Case& mc : cases) {
      auto out = mc.engine->run(wl);
      ASSERT_NO_FATAL_FAILURE(expect_same_deliveries(serial_out, out))
          << c.name << " " << mc.label << " at " << workers << " workers";
      ASSERT_TRUE(serial_state == mc.engine->network().merged_state())
          << c.name << " state diverged under " << mc.label << " at "
          << workers << " workers";
      EXPECT_EQ(serial.total_hops(), mc.engine->network().total_hops())
          << c.name << " " << mc.label << " at " << workers << " workers";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SimCorpus, ::testing::Range(0, 11),
                         [](const auto& info) {
                           std::string n =
                               corpus(make_figure2_campus())
                                   [static_cast<std::size_t>(info.param)]
                                       .name;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(Engine, StuckPacketHeavyScenarioForcesCrossWorkerForwarding) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 2);
  // Two always-written variables plus a state test at the root: capacity 1
  // spreads them over two switches, so nearly every packet escapes at its
  // ingress and then visits both owners to write.
  auto egress = apps::assign_egress(apps::default_subnets(topo.ports()));
  PolPtr p = ite(stest("sim-walk-a", idx("inport"), lit(999999)),
                 filter(drop()),
                 sinc("sim-walk-a", idx("inport")) >>
                     (sinc("sim-walk-b", idx("srcip")) >> egress));
  CompilerOptions copts;
  copts.state_capacity = 1;
  Session session(topo, tm, copts);
  EventResult ev = session.full_compile(p);
  ASSERT_NE(ev.delta.placement.at(state_var_id("sim-walk-a")),
            ev.delta.placement.at(state_var_id("sim-walk-b")));

  sim::Workload wl = sim::WorkloadGen(topo, tm, 5).generate(
      *sim::find_scenario("uniform"), 500);
  Network serial(ev.delta);
  auto serial_out = serial.inject_batch(sim::as_injection_batch(wl));

  sim::EngineOptions opts;
  opts.workers = 2;
  // The locality plan would co-locate both owners and defeat the point of
  // this test; round-robin keeps them on different workers.
  opts.shard = sim::ShardMode::kRoundRobin;
  sim::TrafficEngine engine(ev.delta, opts);
  auto engine_out = engine.run(wl);
  expect_same_deliveries(serial_out, engine_out);
  ASSERT_TRUE(serial.merged_state() == engine.network().merged_state());
  EXPECT_GT(engine.stats().forwards, 0u)
      << "expected stuck/write packets to cross worker shards";
  EXPECT_GT(engine.stats().hops, 0u);
}

TEST(Engine, FreeRunningModeProcessesTheWholeWorkload) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 2);
  auto c = corpus(topo)[2];  // heavy-hitter
  Session session(topo, tm);
  EventResult ev = session.full_compile(c.policy);
  sim::Workload wl = sim::WorkloadGen(topo, tm, 8).generate(
      sim::scenario_for_app(c.name), 600);
  sim::EngineOptions opts;
  opts.workers = 2;
  opts.deterministic = false;
  sim::TrafficEngine engine(ev.delta, opts);
  auto out = engine.run(wl);
  EXPECT_EQ(engine.stats().packets, 600u);
  EXPECT_GT(engine.stats().instructions, 0u);
  EXPECT_GT(engine.stats().pps, 0.0);
  EXPECT_FALSE(engine.stats().deterministic);
  EXPECT_FALSE(out.empty());
}

TEST(Engine, SchedulerThrowReleasesWorkersInsteadOfHanging) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 2);
  auto c = corpus(topo)[2];  // heavy-hitter
  Session session(topo, tm);
  EventResult ev = session.full_compile(c.policy);
  // A workload naming an inport the deployed topology does not attach:
  // dispatch throws on the scheduler side; the engine must propagate the
  // error (not deadlock joining its worker loops).
  sim::Workload wl;
  wl.packets.push_back({static_cast<PortId>(9999), Packet{{"srcip", 1}}});
  sim::EngineOptions opts;
  opts.workers = 2;
  sim::TrafficEngine engine(ev.delta, opts);
  EXPECT_THROW(engine.run(wl), InternalError);
}

TEST(Engine, SessionDeploymentDrivesAFreshNetwork) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 4);
  auto c = corpus(topo)[1];  // stateful-firewall
  Session session(topo, tm);
  session.full_compile(c.policy);
  // deployment() after an event sequence must equal the live deployment.
  session.set_traffic(gravity_traffic(topo, 10.0, 9));
  RuleDelta full = session.deployment();
  EXPECT_EQ(full.programs.size(),
            session.deployed_programs().size());
  sim::Workload wl = sim::WorkloadGen(topo, session.traffic(), 3)
                         .generate(sim::scenario_for_app(c.name), 300);
  Network serial(full);
  auto serial_out = serial.inject_batch(sim::as_injection_batch(wl));
  sim::TrafficEngine engine(full, {});
  auto engine_out = engine.run(wl);
  expect_same_deliveries(serial_out, engine_out);
  ASSERT_TRUE(serial.merged_state() == engine.network().merged_state());
}

TEST(Dataplane, ApplyResetsInstructionStatsForChangedSwitches) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 1);
  auto reg = corpus(topo);
  Session session(topo, tm);
  EventResult cold = session.full_compile(reg[2].policy);  // heavy-hitter
  Network net(cold.delta);
  sim::Workload wl = sim::WorkloadGen(topo, tm, 2).generate(
      sim::scenario_for_app(reg[2].name), 200);
  net.inject_batch(sim::as_injection_batch(wl));
  std::uint64_t before = 0;
  for (int sw = 0; sw < topo.num_switches(); ++sw) {
    before += net.switch_at(sw).instructions_executed();
  }
  ASSERT_GT(before, 0u);

  std::vector<std::uint64_t> per_switch(
      static_cast<std::size_t>(topo.num_switches()));
  for (int sw = 0; sw < topo.num_switches(); ++sw) {
    per_switch[static_cast<std::size_t>(sw)] =
        net.switch_at(sw).instructions_executed();
  }

  EventResult ev = session.set_policy(reg[5].policy);  // udp-flood
  ASSERT_FALSE(ev.delta.changed.empty() && ev.delta.added.empty());
  net.apply(ev.delta);
  for (int sw : ev.delta.changed) {
    EXPECT_EQ(net.switch_at(sw).instructions_executed(), 0u) << sw;
  }
  for (int sw : ev.delta.added) {
    EXPECT_EQ(net.switch_at(sw).instructions_executed(), 0u) << sw;
  }
  // Unchanged switches keep their counters (stats only reset where the
  // program actually moved).
  for (int sw : ev.delta.unchanged) {
    EXPECT_EQ(net.switch_at(sw).instructions_executed(),
              per_switch[static_cast<std::size_t>(sw)])
        << sw;
  }
}

TEST(ConflictCache, CachedMaskMatchesFreshWalkOnMixedTrace) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 3);
  auto subnets = apps::default_subnets(topo.ports());
  // A composite with several state tables so masks actually differ by
  // flavor of packet (pure field-routed packets get empty masks, SYNs hit
  // the heavy-hitter tables, 10.0.6/24 traffic hits the firewall pair).
  PolPtr composite =
      apps::heavy_hitter("cc-hh", 3) >>
      (apps::stateful_firewall("cc-fw", "10.0.6.0/24") >>
       apps::assign_egress(subnets));
  Session session(topo, tm);
  EventResult ev = session.full_compile(composite);
  Network net(ev.delta);

  sim::Workload wl = sim::WorkloadGen(topo, tm, 21).generate(
      *sim::find_scenario("mixed"), 2000);
  sim::ConflictCache cache(net.store(), net.root());
  sim::ConflictCache ref(net.store(), net.root());
  EXPECT_FALSE(cache.test_fields().empty());

  std::vector<StateVarId> fresh;
  for (const auto& sp : wl.packets) {
    std::uint32_t idx = cache.mask_index(sp.pkt, sp.flow);
    ref.fresh_walk(sp.pkt, fresh);
    ASSERT_EQ(cache.mask(idx), fresh)
        << "cached conflict mask diverged from the fresh field-consistent "
           "walk for packet "
        << sp.pkt.to_string();
    for (StateVarId v : fresh) EXPECT_LE(v, cache.max_var_id());
  }
  // Flows replay a small signature set: the trace must be served mostly
  // from the cache, with exactly one walk per distinct signature.
  EXPECT_EQ(cache.hits() + cache.misses(), wl.packets.size());
  EXPECT_GT(cache.hits(), cache.misses());
  EXPECT_GT(cache.misses(), 0u);
}

TEST(Engine, ConflictCacheStatsSurfaceThroughSimStats) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 2);
  auto c = corpus(topo)[2];  // heavy-hitter
  Session session(topo, tm);
  EventResult ev = session.full_compile(c.policy);
  sim::Workload wl = sim::WorkloadGen(topo, tm, 4).generate(
      sim::scenario_for_app(c.name), 400);
  sim::EngineOptions opts;
  opts.workers = 2;
  sim::TrafficEngine engine(ev.delta, opts);
  engine.run(wl);
  EXPECT_EQ(engine.stats().conflict_hits + engine.stats().conflict_misses,
            wl.packets.size());
  EXPECT_GT(engine.stats().conflict_hits, 0u);
  // The JSON view carries the new counters and full-precision doubles.
  std::string js = engine.stats().to_json();
  EXPECT_NE(js.find("\"conflict_hits\":"), std::string::npos);
  EXPECT_NE(js.find("\"burst\":"), std::string::npos);
  EXPECT_NE(js.find("\"steady_allocs\":"), std::string::npos);
  EXPECT_NE(js.find("\"direct_switches\":"), std::string::npos);
}

// A 16-switch line with 12 always-written variables placed zig-zag across
// the ends: the phase-2 write chain walks ~114 hops, more than the old
// single 4n+16 = 80 budget that was stretched across the whole resolve +
// multi-owner chain. With per-owner walk budgets (matching phase 3's
// per-copy budget) the chain completes, serial and sharded alike.
TEST(Dataplane, LongWriteChainDoesNotTripTheWalkGuard) {
  const int n = 16;
  Topology topo("line16", n);
  for (int i = 0; i + 1 < n; ++i) topo.add_duplex(i, i + 1, 1000.0);
  topo.attach_port(1, 0);
  topo.attach_port(2, n - 1);

  const int k = 12;
  std::vector<StateVarId> vars;
  for (int i = 0; i < k; ++i) {
    vars.push_back(state_var_id("lw-" + std::to_string(i)));
  }
  PolPtr p = mod("outport", 2);
  for (int i = k - 1; i >= 0; --i) {
    p = sinc(vars[static_cast<std::size_t>(i)], idx("srcip")) >>
        std::move(p);
  }

  // Hand-built deployment: the MILP would co-locate the chain, so place
  // the owners adversarially by hand (distinct switches, alternating
  // ends, in state-rank order = id order under the default TestOrder).
  Placement pl;
  for (int i = 0; i < k; ++i) {
    pl.switch_of[vars[static_cast<std::size_t>(i)]] =
        (i % 2 == 0) ? (n - 1 - i / 2) : (1 + i / 2);
  }
  auto store = std::make_shared<XfddStore>();
  TestOrder order;
  XfddId root = to_xfdd(*store, order, p);
  RuleDelta delta;
  delta.store = store;
  delta.root = root;
  delta.topo = topo;
  delta.placement = pl;
  delta.order = order;
  delta.programs = assemble_programs(*store, root, pl, n);

  sim::Workload wl;
  for (int i = 0; i < 40; ++i) {
    Packet pk{{"srcip", static_cast<Value>(100 + i % 4)}};
    wl.packets.push_back({1, pk});
  }

  Network serial(delta);
  std::vector<Network::Delivery> serial_out;
  ASSERT_NO_THROW(serial_out =
                      serial.inject_batch(sim::as_injection_batch(wl)));
  ASSERT_EQ(serial_out.size(), wl.packets.size());

  sim::EngineOptions opts;
  opts.workers = 2;
  // Round-robin sharding: the locality plan would co-locate the write
  // chain's owners and the chain would never cross a worker boundary.
  opts.shard = sim::ShardMode::kRoundRobin;
  sim::TrafficEngine engine(delta, opts);
  std::vector<Network::Delivery> engine_out;
  ASSERT_NO_THROW(engine_out = engine.run(wl));
  expect_same_deliveries(serial_out, engine_out);
  ASSERT_TRUE(serial.merged_state() == engine.network().merged_state());
  EXPECT_EQ(serial.total_hops(), engine.network().total_hops());
  // The chain really did cross shards (the scenario is the whole point).
  EXPECT_GT(engine.stats().forwards, 0u);
}

TEST(Engine, XfddDirectPathMatchesDecodedPath) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 1);
  auto c = corpus(topo)[2];  // heavy-hitter (stateful)
  Session session(topo, tm);
  EventResult ev = session.full_compile(c.policy);
  sim::Workload wl = sim::WorkloadGen(topo, tm, 13).generate(
      sim::scenario_for_app(c.name), 500);
  Network serial(ev.delta);
  auto serial_out = serial.inject_batch(sim::as_injection_batch(wl));

  for (bool direct : {false, true}) {
    sim::EngineOptions opts;
    opts.workers = 2;
    opts.xfdd_direct = direct;
    sim::TrafficEngine engine(ev.delta, opts);
    auto out = engine.run(wl);
    ASSERT_NO_FATAL_FAILURE(expect_same_deliveries(serial_out, out))
        << "xfdd_direct=" << direct;
    ASSERT_TRUE(serial.merged_state() == engine.network().merged_state())
        << "xfdd_direct=" << direct;
    if (!direct) EXPECT_EQ(engine.stats().direct_switches, 0);
    // Instruction accounting is identical on either path.
    for (int sw = 0; sw < topo.num_switches(); ++sw) {
      EXPECT_EQ(serial.switch_at(sw).instructions_executed(),
                engine.stats()
                    .per_switch_instructions[static_cast<std::size_t>(sw)])
          << "switch " << sw << " xfdd_direct=" << direct;
    }
  }
}

TEST(Engine, StatelessPolicyRunsEverySwitchOnTheDirectPath) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 1);
  // No state tests anywhere: no switch can ever get stuck, so every
  // deployed switch qualifies for the direct xFDD walk.
  PolPtr p = apps::assign_egress(apps::default_subnets(topo.ports()));
  Session session(topo, tm);
  EventResult ev = session.full_compile(p);
  sim::Workload wl = sim::WorkloadGen(topo, tm, 6).generate(
      *sim::find_scenario("uniform"), 300);
  Network serial(ev.delta);
  auto serial_out = serial.inject_batch(sim::as_injection_batch(wl));

  sim::EngineOptions opts;
  opts.workers = 2;
  sim::TrafficEngine engine(ev.delta, opts);
  auto out = engine.run(wl);
  expect_same_deliveries(serial_out, out);
  EXPECT_EQ(engine.stats().direct_switches, topo.num_switches());
  for (int sw = 0; sw < topo.num_switches(); ++sw) {
    EXPECT_EQ(serial.switch_at(sw).instructions_executed(),
              engine.stats()
                  .per_switch_instructions[static_cast<std::size_t>(sw)])
        << sw;
  }
}

TEST(Engine, SparseHighStateVarIdsStayGatedDeterministically) {
  // Regression for the determinism hole: the gate table used to be sized
  // by state_var_count() at run start and *silently skipped* any id
  // beyond it — a sparse or stale id would let conflicting packets run
  // unserialized. The gate is now sized by the largest id the diagram can
  // put in a mask, and an out-of-range id fails loudly (SNAP_CHECK)
  // instead of skipping. Interning a pad block first pushes this policy's
  // ids far above the dense early range the old sizing assumed.
  for (int i = 0; i < 64; ++i) {
    state_var_id("sparse-pad-" + std::to_string(i));
  }
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 2);
  auto subnets = apps::default_subnets(topo.ports());
  PolPtr p = ite(stest("sparse-hi", idx("srcip"), lit(3)),
                 filter(drop()),
                 sinc("sparse-hi", idx("srcip")) >>
                     apps::assign_egress(subnets));
  Session session(topo, tm);
  EventResult ev = session.full_compile(p);

  Network net(ev.delta);
  sim::ConflictCache cache(net.store(), net.root());
  EXPECT_GE(cache.max_var_id(), state_var_id("sparse-hi"));

  sim::Workload wl = sim::WorkloadGen(topo, tm, 17).generate(
      *sim::find_scenario("uniform"), 400);
  Network serial(ev.delta);
  auto serial_out = serial.inject_batch(sim::as_injection_batch(wl));
  for (int workers : {1, 2}) {
    sim::EngineOptions opts;
    opts.workers = workers;
    sim::TrafficEngine engine(ev.delta, opts);
    auto out = engine.run(wl);
    ASSERT_NO_FATAL_FAILURE(expect_same_deliveries(serial_out, out))
        << workers << " workers";
    ASSERT_TRUE(serial.merged_state() == engine.network().merged_state())
        << workers << " workers";
  }
}

TEST(Engine, LookaheadDispatchesPastBlockedHeadsByteIdentically) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 2);
  // Round-robin sharding keeps state owners spread across workers so
  // unconfined masks really block at the window head (the locality plan
  // confines every corpus policy and the lookahead never has to fire).
  // Lookahead must then (a) visibly dispatch later disjoint-mask packets
  // past the blocked head and (b) still retire in sequence order — the
  // deliveries, merged state and hop counts stay byte-identical to the
  // serial reference and to the lookahead=0 strict head-of-line run.
  std::uint64_t dispatched_ahead = 0;
  for (const auto& c : corpus(topo)) {
    Session session(topo, tm);
    EventResult ev = session.full_compile(c.policy);
    sim::Workload wl = sim::WorkloadGen(topo, tm, 21).generate(
        sim::scenario_for_app(c.name), 400);
    Network serial(ev.delta);
    auto serial_out = serial.inject_batch(sim::as_injection_batch(wl));

    for (int lookahead : {0, 256}) {
      sim::EngineOptions opts;
      opts.workers = 2;
      opts.deterministic = true;
      opts.shard = sim::ShardMode::kRoundRobin;
      opts.lookahead = lookahead;
      sim::TrafficEngine engine(ev.delta, opts);
      auto out = engine.run(wl);
      ASSERT_NO_FATAL_FAILURE(expect_same_deliveries(serial_out, out))
          << c.name << " lookahead=" << lookahead;
      ASSERT_TRUE(serial.merged_state() == engine.network().merged_state())
          << c.name << " lookahead=" << lookahead;
      EXPECT_EQ(serial.total_hops(), engine.network().total_hops())
          << c.name << " lookahead=" << lookahead;
      if (lookahead == 0) {
        EXPECT_EQ(engine.stats().lookahead_dispatches, 0u) << c.name;
      } else {
        dispatched_ahead += engine.stats().lookahead_dispatches;
      }
    }
  }
  EXPECT_GT(dispatched_ahead, 0u)
      << "no corpus policy ever dispatched past a blocked head — the "
         "lookahead path is dead";
}

TEST(Engine, FreeRunningRtcSingleWorkerMatchesSerial) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 2);
  auto c = corpus(topo)[2];  // heavy-hitter (stateful)
  Session session(topo, tm);
  EventResult ev = session.full_compile(c.policy);
  sim::Workload wl = sim::WorkloadGen(topo, tm, 8).generate(
      sim::scenario_for_app(c.name), 600);
  Network serial(ev.delta);
  auto serial_out = serial.inject_batch(sim::as_injection_batch(wl));

  // Free-running RTC races state at W > 1 by design, but with a single
  // worker the burst loop consumes the workload in admission order: the
  // batch-classified fast path must reproduce the serial trajectory
  // exactly, and the pre-sized burst descriptors must not allocate.
  sim::EngineOptions opts;
  opts.workers = 1;
  opts.deterministic = false;
  opts.rtc = true;
  sim::TrafficEngine engine(ev.delta, opts);
  auto out = engine.run(wl);
  ASSERT_NO_FATAL_FAILURE(expect_same_deliveries(serial_out, out));
  ASSERT_TRUE(serial.merged_state() == engine.network().merged_state());
  EXPECT_EQ(serial.total_hops(), engine.network().total_hops());
  EXPECT_GT(engine.stats().rtc_bursts, 0u);
  EXPECT_EQ(engine.stats().steady_allocs, 0u);
}

}  // namespace
}  // namespace snap
