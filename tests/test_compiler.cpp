// The end-to-end compiler pipeline: phase composition (Table 4), solver
// selection, TE re-optimization, and full OBS-to-dataplane integration.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "compiler/pipeline.h"
#include "dataplane/network.h"
#include "lang/eval.h"
#include "topo/gen.h"

namespace snap {
namespace {

using namespace snap::dsl;

Value ip(std::uint32_t a, std::uint32_t b, std::uint32_t c,
         std::uint32_t d) {
  return static_cast<Value>((a << 24) | (b << 16) | (c << 8) | d);
}

PolPtr figure2_program(const std::string& prefix) {
  std::vector<std::pair<std::string, PortId>> subnets;
  for (int i = 1; i <= 6; ++i) {
    subnets.emplace_back("10.0." + std::to_string(i) + ".0/24", i);
  }
  return filter(apps::assumption(subnets)) >>
         (apps::dns_tunnel_detect(prefix, "10.0.6.0/24", 2) >>
          apps::assign_egress(subnets));
}

TEST(Pipeline, ColdStartRunsAllPhases) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 20.0, 1);
  Compiler compiler(topo, tm);
  CompileResult r = compiler.compile(figure2_program("cc1"));
  EXPECT_GT(r.xfdd_nodes, 5u);
  EXPECT_FALSE(r.psmap.all_vars.empty());
  EXPECT_EQ(r.pr.placement.switch_of.size(), 3u);
  EXPECT_GT(r.path_rules, 0u);
  EXPECT_EQ(r.slices.size(), static_cast<std::size_t>(topo.num_switches()));
  // Phase times are populated and compose per Table 4.
  EXPECT_GT(r.times.cold_start(), 0.0);
  EXPECT_LE(r.times.policy_change(), r.times.cold_start());
  EXPECT_NEAR(r.times.cold_start() - r.times.policy_change(),
              r.times.p4_model, 1e-12);
}

TEST(Pipeline, DnsTunnelStateLandsAtCsEdge) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 20.0, 2);
  Compiler compiler(topo, tm);
  CompileResult r = compiler.compile(figure2_program("cc2"));
  // §2.2: the optimal location for all three variables is D4 (switch 5).
  EXPECT_EQ(r.pr.placement.at(state_var_id("cc2.orphan")), 5);
  EXPECT_EQ(r.pr.placement.at(state_var_id("cc2.susp-client")), 5);
  EXPECT_EQ(r.pr.placement.at(state_var_id("cc2.blacklist")), 5);
}

TEST(Pipeline, TeReoptimizationKeepsPlacementAndIsFaster) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 20.0, 3);
  Compiler compiler(topo, tm);
  CompileResult r = compiler.compile(figure2_program("cc3"));
  Placement before = r.pr.placement;

  TrafficMatrix shifted = gravity_traffic(topo, 20.0, 33);
  PhaseTimes te = compiler.reoptimize_te(r, shifted);
  EXPECT_EQ(r.pr.placement.switch_of, before.switch_of);
  EXPECT_GT(te.p5_solve_te, 0.0);
  EXPECT_GT(te.topo_change(), 0.0);
  // TE must not run the analysis phases.
  EXPECT_EQ(te.p1_dependency, 0.0);
  EXPECT_EQ(te.p2_xfdd, 0.0);
}

TEST(Pipeline, ExactSolverChosenForTinyInstances) {
  Topology topo("pair", 2);
  topo.add_duplex(0, 1, 10);
  topo.attach_port(1, 0);
  topo.attach_port(2, 1);
  TrafficMatrix tm;
  tm.set_demand(1, 2, 1.0);
  tm.set_demand(2, 1, 1.0);
  auto prog = sinc("cc4.cnt", idx("inport")) >>
              apps::assign_egress({{"10.0.1.0/24", 1}, {"10.0.2.0/24", 2}});
  Compiler compiler(topo, tm);
  CompileResult r = compiler.compile(prog);
  EXPECT_TRUE(r.used_exact_milp);
  EXPECT_GE(r.pr.placement.at(state_var_id("cc4.cnt")), 0);
}

TEST(Pipeline, ScalableSolverChosenForLargeInstances) {
  Topology topo = make_igen(60, 9);
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 4);
  auto subnets = apps::default_subnets(topo.ports());
  auto prog = apps::heavy_hitter("cc5", 5) >> apps::assign_egress(subnets);
  Compiler compiler(topo, tm);
  CompileResult r = compiler.compile(prog);
  EXPECT_FALSE(r.used_exact_milp);
  EXPECT_GE(r.pr.placement.at(state_var_id("cc5.heavy-hitter")), 0);
}

TEST(Pipeline, CompiledNetworkDetectsDnsTunnel) {
  // Full integration: compile, deploy, attack, observe blacklisting and
  // subsequent state on the data plane.
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 20.0, 5);
  Compiler compiler(topo, tm);
  PolPtr prog = figure2_program("cc6");
  CompileResult r = compiler.compile(prog);
  Network net(topo, *r.store, r.root, r.pr.placement, r.pr.routing, r.order);

  Value client = ip(10, 0, 6, 50);
  auto dns_response = [&](Value rdata) {
    return Packet{{"srcip", ip(10, 0, 1, 9)}, {"dstip", client},
                  {"srcport", 53}, {"dns.rdata", rdata}, {"inport", 1}};
  };
  // Two unused resolutions: delivered to port 6, then client blacklisted.
  auto d1 = net.inject(1, dns_response(ip(10, 0, 2, 1)));
  ASSERT_EQ(d1.size(), 1u);
  EXPECT_EQ(d1[0].outport, 6);
  net.inject(1, dns_response(ip(10, 0, 2, 2)));

  StateVarId blacklist = state_var_id("cc6.blacklist");
  int owner = r.pr.placement.at(blacklist);
  EXPECT_EQ(net.switch_at(owner).state().get(blacklist, {client}), kTrue);

  // Lock-step with the oracle across the attack trace.
  Store oracle;
  Network net2(topo, *r.store, r.root, r.pr.placement, r.pr.routing,
               r.order);
  for (int i = 0; i < 4; ++i) {
    Packet pkt = dns_response(ip(10, 0, 2, static_cast<std::uint32_t>(i)));
    oracle = eval(prog, oracle, pkt).store;
    net2.inject(1, pkt);
    EXPECT_TRUE(net2.merged_state() == oracle);
  }
}

TEST(Pipeline, AllTable3AppsCompileOnCampus) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 20.0, 6);
  std::vector<std::pair<std::string, PortId>> subnets;
  for (int i = 1; i <= 6; ++i) {
    subnets.emplace_back("10.0." + std::to_string(i) + ".0/24", i);
  }
  for (const auto& app : apps::registry()) {
    Compiler compiler(topo, tm);
    PolPtr prog =
        app.build("ct." + app.name) >> apps::assign_egress(subnets);
    CompileResult r;
    ASSERT_NO_THROW(r = compiler.compile(prog)) << app.name;
    // Every state variable must be placed.
    for (StateVarId v : r.psmap.all_vars) {
      EXPECT_GE(r.pr.placement.at(v), 0) << app.name;
    }
  }
}

TEST(Pipeline, IncrementalParallelCompositionScales) {
  // Figure-11 shape: compose more and more apps; compilation stays
  // functional and xFDD size grows monotonically.
  Topology topo = make_igen(20, 12);
  TrafficMatrix tm = gravity_traffic(topo, 5.0, 7);
  auto subnets = apps::default_subnets(topo.ports());
  const auto& reg = apps::registry();
  PolPtr composed;
  std::size_t last_nodes = 0;
  for (std::size_t k = 0; k < 6; ++k) {
    PolPtr guarded = dsl::ite(
        dsl::test_cidr("dstip", subnets[k % subnets.size()].first),
        reg[k].build("inc" + std::to_string(k)), dsl::filter(dsl::id()));
    composed = composed ? composed + guarded : guarded;
    Compiler compiler(topo, tm);
    CompileResult r =
        compiler.compile(composed >> apps::assign_egress(subnets));
    EXPECT_GE(r.xfdd_nodes, last_nodes) << "k=" << k;
    last_nodes = r.xfdd_nodes;
  }
}

}  // namespace
}  // namespace snap
