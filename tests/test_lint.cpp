// snap-lint (analysis/lint.h) and the conflict-mask soundness cross-check
// (sim/soundness.h): one hand-built failing fixture per diagnostic class,
// the corpus sweep the CI lint gate mirrors, and the engine's dynamic
// soundness assert proven to catch a reintroduced mask-computation hole.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "analysis/lint.h"
#include "apps/apps.h"
#include "compiler/session.h"
#include "netasm/isa.h"
#include "sim/engine.h"
#include "sim/workload.h"
#include "topo/gen.h"
#include "util/status.h"
#include "xfdd/action.h"
#include "xfdd/xfdd.h"

namespace snap {
namespace {

using namespace snap::dsl;

// ----------------------------------------------------------- SL100 / SL101

// root: (dstip=1 ? inner : drop), inner: (dstip=1 ? id : fwd7). Every path
// reaching `inner` has already decided dstip=1, so inner never branches
// (SL100) and the fwd7 leaf has zero satisfiable incoming paths (SL101).
TEST(LintXfdd, DominatedTestAndDeadLeaf) {
  XfddStore store;
  snap::Test t{TestFV{field_id("dstip"), 1, kExactMatch}};
  XfddId fwd7 = store.leaf(ActionSet::of(
      {ActionSeq::of({Action{ActMod{field_id("outport"), 7}}})}));
  XfddId inner = store.branch(t, store.id_leaf(), fwd7);
  XfddId root = store.branch(t, inner, store.drop_leaf());

  LintReport r = lint_xfdd(store, root);
  EXPECT_EQ(r.count("SL100"), 1u) << r.to_string();
  EXPECT_EQ(r.count("SL101"), 1u) << r.to_string();
  EXPECT_EQ(r.count("SL190"), 0u) << r.to_string();
  EXPECT_FALSE(r.clean());   // SL100 is a warning
  EXPECT_FALSE(r.has_errors());
}

TEST(LintXfdd, CleanDiagramHasNoFindings) {
  XfddStore store;
  snap::Test t1{TestFV{field_id("dstip"), 1, kExactMatch}};
  snap::Test t2{TestFV{field_id("srcport"), 53, kExactMatch}};
  XfddId inner = store.branch(t2, store.id_leaf(), store.drop_leaf());
  XfddId root = store.branch(t1, inner, store.drop_leaf());

  LintReport r = lint_xfdd(store, root);
  EXPECT_TRUE(r.findings.empty()) << r.to_string();
  EXPECT_TRUE(r.clean());
}

// A value test on the same field also decides later tests: dstip=1 held
// implies dstip=2 fails, so the inner node is dominated even though the
// tests differ.
TEST(LintXfdd, SameFieldDifferentValueDominates) {
  XfddStore store;
  snap::Test t1{TestFV{field_id("dstip"), 1, kExactMatch}};
  snap::Test t2{TestFV{field_id("dstip"), 2, kExactMatch}};
  XfddId fwd7 = store.leaf(ActionSet::of(
      {ActionSeq::of({Action{ActMod{field_id("outport"), 7}}})}));
  XfddId inner = store.branch(t2, fwd7, store.id_leaf());
  XfddId root = store.branch(t1, inner, store.drop_leaf());

  LintReport r = lint_xfdd(store, root);
  EXPECT_EQ(r.count("SL100"), 1u) << r.to_string();
  EXPECT_EQ(r.count("SL101"), 1u) << r.to_string();  // fwd7 is dead
}

TEST(LintXfdd, BudgetExhaustionReportsOnlySL190) {
  XfddStore store;
  snap::Test t{TestFV{field_id("dstip"), 1, kExactMatch}};
  XfddId inner = store.branch(t, store.id_leaf(), store.drop_leaf());
  XfddId root = store.branch(t, inner, store.drop_leaf());

  LintReport r = lint_xfdd(store, root, /*path_budget=*/1);
  EXPECT_EQ(r.count("SL190"), 1u) << r.to_string();
  EXPECT_EQ(r.findings.size(), 1u) << r.to_string();
  EXPECT_TRUE(r.clean());  // a note, not a warning
}

// ----------------------------------------------------------- SL200 / SL201

TEST(LintPolicy, WrittenNeverRead) {
  // Guarded so SL300 stays quiet and the report isolates the dead write.
  PolPtr p = ite(test_cidr("srcip", "10.0.6.0/24"),
                 sinc("lint-wnr", idx("srcip")), filter(id())) >>
             mod("outport", 1);
  LintReport r = lint_policy(p);
  EXPECT_EQ(r.count("SL200"), 1u) << r.to_string();
  EXPECT_EQ(r.count("SL201"), 0u) << r.to_string();
  EXPECT_TRUE(r.clean());  // monitoring state is a note, not a warning
}

TEST(LintPolicy, ReadNeverWritten) {
  PolPtr p = ite(stest("lint-rnw", idx("srcip"), lit(1)), filter(drop()),
                 mod("outport", 1));
  LintReport r = lint_policy(p);
  EXPECT_EQ(r.count("SL201"), 1u) << r.to_string();
  EXPECT_EQ(r.count("SL200"), 0u) << r.to_string();
  EXPECT_FALSE(r.clean());
  EXPECT_FALSE(r.has_errors());
}

TEST(LintPolicy, ReadAndWrittenIsClean) {
  PolPtr p = ite(stest("lint-rw", idx("srcip"), lit(3)), filter(drop()),
                 sinc("lint-rw", idx("srcip")));
  LintReport r = lint_policy(p);
  EXPECT_EQ(r.count("SL200"), 0u) << r.to_string();
  EXPECT_EQ(r.count("SL201"), 0u) << r.to_string();
}

// ------------------------------------------------------------------- SL300

TEST(LintPolicy, UnboundedIndexWarns) {
  PolPtr p = sinc("lint-tab", idx("srcip")) >>
             filter(stest("lint-tab", idx("srcip"), lit(0)));
  LintReport r = lint_policy(p);
  ASSERT_EQ(r.count("SL300"), 1u) << r.to_string();
  EXPECT_FALSE(r.clean());
}

TEST(LintPolicy, BoundingPredicateSuppressesSL300) {
  // The write only executes when srcip is pinned to a /24 (256 values), via
  // an if-guard or an upstream sequential filter; either bounds the table.
  PolPtr read = filter(stest("lint-bnd", idx("srcip"), lit(0)));
  PolPtr guarded = ite(test_cidr("srcip", "10.0.6.0/24"),
                       sinc("lint-bnd", idx("srcip")), filter(id())) >>
                   read;
  EXPECT_EQ(lint_policy(guarded).count("SL300"), 0u);

  PolPtr seq_guarded = filter(test_cidr("srcip", "10.0.6.0/24")) >>
                       (sinc("lint-bnd", idx("srcip")) >> read);
  EXPECT_EQ(lint_policy(seq_guarded).count("SL300"), 0u);

  // A /8 admits 2^24 values — not a bound.
  PolPtr weak = ite(test_cidr("srcip", "10.0.0.0/8"),
                    sinc("lint-bnd", idx("srcip")), filter(id())) >>
                read;
  EXPECT_EQ(lint_policy(weak).count("SL300"), 1u);

  // The guard must cover the indexing field, not some other field.
  PolPtr wrong_field = ite(test_cidr("dstip", "10.0.6.0/24"),
                           sinc("lint-bnd", idx("srcip")), filter(id())) >>
                       read;
  EXPECT_EQ(lint_policy(wrong_field).count("SL300"), 1u);
}

TEST(LintPolicy, MultiFieldIndexNamesOnlyUnboundedFields) {
  PolPtr p = ite(test_cidr("dstip", "10.0.6.0/24"),
                 sset("lint-mf", idx("dstip", "dns.rdata"), lit(1)),
                 filter(id())) >>
             filter(stest("lint-mf", idx("dstip", "dns.rdata"), lit(1)));
  LintReport r = lint_policy(p);
  ASSERT_EQ(r.count("SL300"), 1u) << r.to_string();
  for (const LintFinding& f : r.findings) {
    if (f.rule != "SL300") continue;
    EXPECT_NE(f.message.find("dns.rdata"), std::string::npos) << f.message;
    EXPECT_EQ(f.message.find("dstip,"), std::string::npos) << f.message;
  }
}

// ------------------------------------------------------------------- SL400

TEST(LintPolicy, ParallelWriteWriteRace) {
  // P2 rejects this program outright; the linter reports it on the bare
  // AST with the offending variable and the + node's source span.
  PolPtr p = par(sinc("lint-race", idx("srcip")),
                 sset("lint-race", idx("srcip"), lit(1)));
  LintReport r = lint_policy(p);
  ASSERT_EQ(r.count("SL400"), 1u) << r.to_string();
  EXPECT_TRUE(r.has_errors());
  EXPECT_EQ(r.findings[0].rule, "SL400");  // errors sort first
  EXPECT_EQ(r.findings[0].subject, state_var_name(state_var_id("lint-race")));
}

TEST(LintPolicy, DisjointParallelWritesAreClean) {
  PolPtr p = par(sinc("lint-pa", idx("srcip")),
                 sinc("lint-pb", idx("srcip")));
  EXPECT_EQ(lint_policy(p).count("SL400"), 0u);
}

// ------------------------------------------------------------------- SL500

TEST(LintMaskSoundness, ProgramVarOutsideDiagramIsAnError) {
  XfddStore store;
  StateVarId known = state_var_id("lint-known");
  StateVarId rogue = state_var_id("lint-rogue");
  snap::Test st{TestState{known, idx("srcip"), Expr::of_value(1)}};
  XfddId root = store.branch(st, store.id_leaf(), store.drop_leaf());

  std::map<int, netasm::Program> programs;
  netasm::Program good;
  good.code.push_back(netasm::IStateInc{known, idx("srcip")});
  programs.emplace(0, good);
  EXPECT_FALSE(lint_mask_soundness(store, root, programs).has_errors());

  netasm::Program bad;
  bad.code.push_back(netasm::IStateInc{rogue, idx("srcip")});
  programs.emplace(1, bad);
  LintReport r = lint_mask_soundness(store, root, programs);
  ASSERT_EQ(r.count("SL500"), 1u) << r.to_string();
  EXPECT_TRUE(r.has_errors());
  EXPECT_EQ(r.findings[0].subject, state_var_name(rogue));
}

TEST(LintMaskSoundness, DiagramVarsUnionTestsAndLeafWrites) {
  XfddStore store;
  StateVarId tested = state_var_id("lint-dsv-t");
  StateVarId written = state_var_id("lint-dsv-w");
  XfddId wleaf = store.leaf(ActionSet::of(
      {ActionSeq::of({Action{ActStateInc{written, idx("srcip")}}})}));
  snap::Test st{TestState{tested, idx("srcip"), Expr::of_value(1)}};
  XfddId root = store.branch(st, wleaf, store.drop_leaf());

  std::set<StateVarId> vars = diagram_state_vars(store, root);
  EXPECT_TRUE(vars.count(tested));
  EXPECT_TRUE(vars.count(written));
  EXPECT_EQ(vars.size(), 2u);
}

// ----------------------------------------------- dynamic soundness check

// The runtime half of SL500: a hole punched into the dispatched conflict
// mask (the corrupt_soundness_var test hook reproduces the PR-5
// sparse-state-id bug class) must trip the engine's debug cross-check; the
// same run with intact masks must pass with the check armed.
TEST(SoundnessCheck, CorruptedMaskTripsTheCrossCheck) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 1);
  PolPtr p = (sinc("lint-snd", idx("srcip")) >>
              filter(stest("lint-snd", idx("srcip"), lit(999999)))) >>
             apps::assign_egress(apps::default_subnets(topo.ports())) +
                 filter(id());
  Session session(topo, tm);
  EventResult ev = session.full_compile(p);
  sim::Workload wl = sim::WorkloadGen(topo, tm, 7).generate(
      *sim::find_scenario("uniform"), 200);

  sim::EngineOptions opts;
  opts.workers = 2;
  opts.deterministic = true;
  opts.check_soundness = true;  // explicit: armed even in Release builds
  {
    sim::TrafficEngine engine(ev.delta, opts);
    EXPECT_NO_THROW(engine.run(wl));
  }
  opts.corrupt_soundness_var = static_cast<int>(state_var_id("lint-snd"));
  {
    sim::TrafficEngine engine(ev.delta, opts);
    EXPECT_THROW(engine.run(wl), InternalError);
  }
}

// -------------------------------------------------------- session + corpus

TEST(SessionLint, RequiresACompiledSession) {
  Topology topo = make_figure2_campus();
  Session session(topo, gravity_traffic(topo, 10.0, 1));
  EXPECT_THROW(session.lint(), Error);
}

TEST(SessionLint, CombinesPolicyDiagramAndProgramRules) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 1);
  // Unguarded per-srcip table: SL300 from the AST pass; the deployed
  // programs are generated from the same diagram, so SL500 stays silent.
  PolPtr p = (sinc("lint-sess", idx("srcip")) >>
              filter(stest("lint-sess", idx("srcip"), lit(999999)))) >>
             apps::assign_egress(apps::default_subnets(topo.ports()));
  Session session(topo, tm);
  session.full_compile(p);
  LintReport r = session.lint();
  EXPECT_GE(r.count("SL300"), 1u) << r.to_string();
  EXPECT_EQ(r.count("SL500"), 0u) << r.to_string();
  EXPECT_FALSE(r.has_errors()) << r.to_string();
}

// The 11-policy evaluation corpus must lint clean — no errors, no dominated
// tests, no read-never-written state — except the known unbounded-state
// warnings (every corpus policy keys at least one table by an unguarded
// header field; the paper's §7 state-size discussion accepts this and the
// ISSUE names four exemplars). Everything else allowed through is a note.
TEST(SessionLint, CorpusCleanExceptKnownUnboundedState) {
  Topology topo = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(topo, 10.0, 1);
  std::set<std::string> warned_sl300;
  for (const apps::CorpusApp& app :
       apps::evaluation_corpus("lintc", apps::default_subnets(topo.ports()))) {
    Session session(topo, tm);
    session.full_compile(app.policy);
    LintReport r = session.lint();
    EXPECT_FALSE(r.has_errors()) << app.name << ":\n" << r.to_string();
    EXPECT_EQ(r.count("SL100"), 0u) << app.name << ":\n" << r.to_string();
    EXPECT_EQ(r.count("SL201"), 0u) << app.name << ":\n" << r.to_string();
    EXPECT_EQ(r.count("SL190"), 0u) << app.name << ":\n" << r.to_string();
    for (const LintFinding& f : r.findings) {
      EXPECT_TRUE(f.rule == "SL300" || f.severity == LintSeverity::kNote)
          << app.name << ": unexpected " << f.rule << "\n" << r.to_string();
    }
    if (r.count("SL300") > 0) warned_sl300.insert(app.name);
  }
  for (const char* name : {"super-spreader", "heavy-hitter",
                           "stateful-firewall", "sidejack-detect"}) {
    EXPECT_TRUE(warned_sl300.count(name))
        << name << " lost its expected unbounded-state warning";
  }
}

// ------------------------------------------------------------ report shape

TEST(LintReport, SortAndSerialization) {
  LintReport r;
  r.findings.push_back({"SL200", LintSeverity::kNote, "b", "written", 4});
  r.findings.push_back({"SL400", LintSeverity::kError, "a", "race", 2});
  r.findings.push_back({"SL300", LintSeverity::kWarning, "c", "unbounded",
                        -1});
  r.sort();
  EXPECT_EQ(r.findings[0].rule, "SL400");
  EXPECT_EQ(r.findings[1].rule, "SL300");
  EXPECT_EQ(r.findings[2].rule, "SL200");

  std::string text = r.to_string();
  EXPECT_NE(text.find("error SL400 (line 2) a: race"), std::string::npos)
      << text;

  std::string json = r.to_json();
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"warnings\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"notes\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\":\"SL400\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\":-1"), std::string::npos) << json;
}

}  // namespace
}  // namespace snap
