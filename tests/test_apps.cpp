// Behavioral tests for every Table-3 application: each app's detection /
// mitigation logic is exercised packet-by-packet through the eval oracle,
// and every trace is replayed against the app's xFDD translation to confirm
// the compiler preserves its semantics.
#include <gtest/gtest.h>

#include "analysis/depgraph.h"
#include "apps/apps.h"
#include "lang/eval.h"
#include "util/status.h"
#include "xfdd/compose.h"

namespace snap {
namespace {

using namespace snap::dsl;

constexpr Value kSyn = 2, kAck = 16, kFin = 1, kSynAck = 18, kFinAck = 17;
constexpr Value kEstablished = 3, kClosed = 0;
constexpr Value kTracked = 1, kSpammer = 2;
constexpr Value kUdp = 17;

Value ip(std::uint32_t a, std::uint32_t b, std::uint32_t c,
         std::uint32_t d) {
  return static_cast<Value>((a << 24) | (b << 16) | (c << 8) | d);
}

// Runs a trace through eval, asserting xFDD agreement at every step, and
// returns the final store.
Store run_trace(const PolPtr& p, const std::vector<Packet>& trace) {
  DependencyGraph deps = DependencyGraph::build(p);
  TestOrder order = deps.test_order();
  XfddStore s;
  XfddId d = to_xfdd(s, order, p);
  Store st_eval, st_xfdd;
  for (const Packet& pkt : trace) {
    EvalResult r1 = eval(p, st_eval, pkt);
    EvalResult r2 = eval_xfdd(s, d, st_xfdd, pkt);
    EXPECT_EQ(r1.packets, r2.packets) << "xFDD diverged on " << pkt.to_string();
    EXPECT_TRUE(r1.store == r2.store) << "state diverged on "
                                      << pkt.to_string();
    st_eval = r1.store;
    st_xfdd = r2.store;
  }
  return st_eval;
}

// Number of packets the policy emits for `pkt` under `st`.
std::size_t emits(const PolPtr& p, const Store& st, const Packet& pkt) {
  return eval(p, st, pkt).packets.size();
}

TEST(Apps, RegistryCoversTable3) {
  const auto& reg = apps::registry();
  EXPECT_EQ(reg.size(), 20u);
  std::set<std::string> sources;
  for (const auto& a : reg) sources.insert(a.source);
  EXPECT_TRUE(sources.count("Chimera"));
  EXPECT_TRUE(sources.count("FAST"));
  EXPECT_TRUE(sources.count("Bohatei"));
  EXPECT_TRUE(sources.count("Others"));
}

TEST(Apps, AllAppsCompileToXfdd) {
  for (const auto& app : apps::registry()) {
    PolPtr p = app.build("t0." + app.name);
    DependencyGraph deps = DependencyGraph::build(p);
    TestOrder order = deps.test_order();
    XfddStore s;
    EXPECT_NO_THROW({
      XfddId d = to_xfdd(s, order, p);
      EXPECT_GT(s.reachable_size(d), 0u);
    }) << app.name;
  }
}

TEST(Apps, ManyIpDomains) {
  auto p = apps::many_ip_domains("t1", 3);
  Value bad_ip = ip(6, 6, 6, 6);
  std::vector<Packet> trace;
  for (int q = 1; q <= 3; ++q) {
    trace.push_back(Packet{{"srcport", 53},
                           {"dns.rdata", bad_ip},
                           {"dns.qname", 1000 + q}});
  }
  // A repeated (ip, domain) pair must not count twice.
  trace.push_back(Packet{{"srcport", 53},
                         {"dns.rdata", bad_ip},
                         {"dns.qname", 1001}});
  Store st = run_trace(p, trace);
  EXPECT_EQ(st.get(state_var_id("t1.num-of-domains"), {bad_ip}), 3);
  EXPECT_EQ(st.get(state_var_id("t1.mal-ip-list"), {bad_ip}), kTrue);
}

TEST(Apps, ManyDomainIps) {
  auto p = apps::many_domain_ips("t2", 2);
  Value domain = 777;
  Store st = run_trace(
      p, {Packet{{"srcport", 53}, {"dns.qname", domain}, {"dns.rdata", 1}},
          Packet{{"srcport", 53}, {"dns.qname", domain}, {"dns.rdata", 2}}});
  EXPECT_EQ(st.get(state_var_id("t2.mal-domain-list"), {domain}), kTrue);
  // Non-DNS traffic is untouched.
  EXPECT_EQ(emits(p, st, Packet{{"srcport", 80}, {"dns.qname", domain}}), 1u);
}

TEST(Apps, DnsTtlChange) {
  auto p = apps::dns_ttl_change("t3", 0);
  Value host = ip(1, 2, 3, 4);
  Store st = run_trace(
      p, {Packet{{"srcport", 53}, {"dns.rdata", host}, {"dns.ttl", 300}},
          Packet{{"srcport", 53}, {"dns.rdata", host}, {"dns.ttl", 300}},
          Packet{{"srcport", 53}, {"dns.rdata", host}, {"dns.ttl", 60}},
          Packet{{"srcport", 53}, {"dns.rdata", host}, {"dns.ttl", 30}}});
  EXPECT_EQ(st.get(state_var_id("t3.ttl-change"), {host}), 2);
  EXPECT_EQ(st.get(state_var_id("t3.last-ttl"), {host}), 30);
}

TEST(Apps, DnsTunnelDetect) {
  auto p = apps::dns_tunnel_detect("t4", "10.0.6.0/24", 2);
  Value client = ip(10, 0, 6, 50);
  Store st = run_trace(
      p,
      {Packet{{"dstip", client}, {"srcport", 53}, {"dns.rdata", 91}},
       Packet{{"dstip", client}, {"srcport", 53}, {"dns.rdata", 92}}});
  EXPECT_EQ(st.get(state_var_id("t4.blacklist"), {client}), kTrue);
  // A client that uses its resolutions is never blacklisted.
  auto q = apps::dns_tunnel_detect("t4b", "10.0.6.0/24", 2);
  Store st2 = run_trace(
      q, {Packet{{"dstip", client}, {"srcport", 53}, {"dns.rdata", 91}},
          Packet{{"srcip", client}, {"dstip", 91}, {"srcport", 1234}},
          Packet{{"dstip", client}, {"srcport", 53}, {"dns.rdata", 92}}});
  EXPECT_EQ(st2.get(state_var_id("t4b.blacklist"), {client}), kFalse);
  EXPECT_EQ(st2.get(state_var_id("t4b.susp-client"), {client}), 1);
}

TEST(Apps, SidejackDetect) {
  auto p = apps::sidejack_detect("t5", "10.0.6.10/32");
  Value server = ip(10, 0, 6, 10);
  Packet login{{"dstip", server}, {"sid", 42}, {"srcip", 1},
               {"http.user-agent", 7}};
  Store st = run_trace(p, {login});
  // Same session from the same client+agent passes.
  EXPECT_EQ(emits(p, st, login), 1u);
  // Hijacker with a different source IP is dropped.
  Packet hijack{{"dstip", server}, {"sid", 42}, {"srcip", 2},
                {"http.user-agent", 7}};
  EXPECT_EQ(emits(p, st, hijack), 0u);
  // Different agent, same IP: also dropped.
  Packet agent{{"dstip", server}, {"sid", 42}, {"srcip", 1},
               {"http.user-agent", 8}};
  EXPECT_EQ(emits(p, st, agent), 0u);
  // Sessions with a null sid bypass the check.
  Packet nosid{{"dstip", server}, {"sid", 0}, {"srcip", 2}};
  EXPECT_EQ(emits(p, st, nosid), 1u);
}

TEST(Apps, SpamDetect) {
  auto p = apps::spam_detect("t6", 3);
  Value mta = 555;
  std::vector<Packet> mails(3, Packet{{"smtp.MTA", mta}});
  Store st = run_trace(p, mails);
  EXPECT_EQ(st.get(state_var_id("t6.MTA-dir"), {mta}), kSpammer);
  // A quieter MTA stays Tracked.
  auto q = apps::spam_detect("t6b", 3);
  Store st2 = run_trace(q, {Packet{{"smtp.MTA", mta}}});
  EXPECT_EQ(st2.get(state_var_id("t6b.MTA-dir"), {mta}), kTracked);
}

TEST(Apps, StatefulFirewall) {
  auto p = apps::stateful_firewall("t7", "10.0.6.0/24");
  Value inside = ip(10, 0, 6, 5);
  Value outside = ip(8, 8, 8, 8);
  Store st;
  // Unsolicited inbound: dropped.
  EXPECT_EQ(emits(p, st, Packet{{"srcip", outside}, {"dstip", inside}}), 0u);
  // Outbound opens the hole...
  st = run_trace(p, {Packet{{"srcip", inside}, {"dstip", outside}}});
  // ...and the response passes.
  EXPECT_EQ(emits(p, st, Packet{{"srcip", outside}, {"dstip", inside}}), 1u);
  // Unrelated outside pair still blocked.
  EXPECT_EQ(emits(p, st, Packet{{"srcip", ip(9, 9, 9, 9)},
                                {"dstip", inside}}),
            0u);
}

TEST(Apps, FtpMonitoring) {
  auto p = apps::ftp_monitoring("t8");
  Value client = 100, server = 200, port = 3456;
  Store st;
  // Data connection before control announcement: dropped.
  EXPECT_EQ(emits(p, st, Packet{{"srcip", server}, {"dstip", client},
                                {"srcport", 20}, {"ftp.PORT", port}}),
            0u);
  st = run_trace(p, {Packet{{"srcip", client}, {"dstip", server},
                            {"dstport", 21}, {"ftp.PORT", port}}});
  EXPECT_EQ(emits(p, st, Packet{{"srcip", server}, {"dstip", client},
                                {"srcport", 20}, {"ftp.PORT", port}}),
            1u);
}

TEST(Apps, HeavyHitter) {
  auto p = apps::heavy_hitter("t9", 3);
  Value attacker = 13;
  std::vector<Packet> syns(3, Packet{{"tcp.flags", kSyn},
                                     {"srcip", attacker}});
  Store st = run_trace(p, syns);
  EXPECT_EQ(st.get(state_var_id("t9.heavy-hitter"), {attacker}), kTrue);
  // Once flagged, the counter freezes (the guard fails).
  Store st2 = eval(p, st, syns[0]).store;
  EXPECT_EQ(st2.get(state_var_id("t9.hh-counter"), {attacker}), 3);
}

TEST(Apps, SuperSpreader) {
  auto p = apps::super_spreader("t10", 2);
  Value src = 77;
  // SYN, SYN -> flagged at 2.
  Store st = run_trace(p, {Packet{{"tcp.flags", kSyn}, {"srcip", src}},
                           Packet{{"tcp.flags", kSyn}, {"srcip", src}}});
  EXPECT_EQ(st.get(state_var_id("t10.super-spreader"), {src}), kTrue);
  // FIN decrements: SYN, FIN, SYN never reaches 2.
  auto q = apps::super_spreader("t10b", 2);
  Store st2 = run_trace(q, {Packet{{"tcp.flags", kSyn}, {"srcip", src}},
                            Packet{{"tcp.flags", kFin}, {"srcip", src}},
                            Packet{{"tcp.flags", kSyn}, {"srcip", src}}});
  EXPECT_EQ(st2.get(state_var_id("t10b.super-spreader"), {src}), kFalse);
}

TEST(Apps, SamplingByFlowSize) {
  auto p = apps::sampling_by_flow_size("t11");
  Packet flow{{"srcip", 1}, {"dstip", 2}, {"srcport", 3}, {"dstport", 4},
              {"proto", 6}};
  Store st;
  int passed = 0;
  for (int i = 0; i < 10; ++i) {
    EvalResult r = eval(p, st, flow);
    st = r.store;
    passed += static_cast<int>(r.packets.size());
  }
  // A small flow is sampled 1-in-5: 10 packets -> 2 samples.
  EXPECT_EQ(passed, 2);
}

TEST(Apps, SelectivePacketDropping) {
  auto p = apps::selective_packet_dropping("t12");
  Packet iframe{{"mpeg.frame-type", 1}, {"srcip", 1}, {"dstip", 2},
                {"srcport", 3}, {"dstport", 4}};
  Packet bframe{{"mpeg.frame-type", 2}, {"srcip", 1}, {"dstip", 2},
                {"srcport", 3}, {"dstport", 4}};
  Store st;
  // Without a preceding I-frame the dependent frame is dropped.
  EXPECT_EQ(emits(p, st, bframe), 0u);
  st = run_trace(p, {iframe});
  // After the I-frame, 14 dependent frames pass.
  int passed = 0;
  for (int i = 0; i < 16; ++i) {
    EvalResult r = eval(p, st, bframe);
    st = r.store;
    passed += static_cast<int>(r.packets.size());
  }
  EXPECT_EQ(passed, 14);
}

TEST(Apps, ConnectionAffinity) {
  auto lb = mod("outport", 9);
  auto p = apps::connection_affinity("t13", lb);
  Packet pkt{{"srcip", 1}, {"dstip", 2}, {"srcport", 3}, {"dstport", 4},
             {"proto", 6}};
  Store st;
  // New connection: load balancer not applied (id).
  auto r = eval(p, st, pkt);
  EXPECT_FALSE(r.packets.begin()->get("outport").has_value());
  // Established (either direction): the sticky choice applies.
  st.set(state_var_id("t13.tcp-state"), {1, 2, 3, 4, 6}, kEstablished);
  r = eval(p, st, pkt);
  EXPECT_EQ(r.packets.begin()->get("outport"), 9);
}

TEST(Apps, SynFloodDetect) {
  auto p = apps::syn_flood_detect("t14", 2);
  Value src = 31;
  // Two SYNs, no ACK: flagged.
  Store st = run_trace(p, {Packet{{"tcp.flags", kSyn}, {"srcip", src}},
                           Packet{{"tcp.flags", kSyn}, {"srcip", src}}});
  EXPECT_EQ(st.get(state_var_id("t14.syn-flooder"), {src}), kTrue);
  // Completed handshakes balance out.
  auto q = apps::syn_flood_detect("t14b", 2);
  Store st2 = run_trace(q, {Packet{{"tcp.flags", kSyn}, {"srcip", src}},
                            Packet{{"tcp.flags", kAck}, {"srcip", src}},
                            Packet{{"tcp.flags", kSyn}, {"srcip", src}}});
  EXPECT_EQ(st2.get(state_var_id("t14b.syn-flooder"), {src}), kFalse);
}

TEST(Apps, DnsAmplification) {
  auto p = apps::dns_amplification("t15");
  Value victim = 50, resolver = 60;
  Store st;
  // Unsolicited DNS response to the victim: dropped.
  EXPECT_EQ(emits(p, st, Packet{{"srcip", resolver}, {"dstip", victim},
                                {"srcport", 53}}),
            0u);
  // After a genuine request, the response passes.
  st = run_trace(p, {Packet{{"srcip", victim}, {"dstip", resolver},
                            {"dstport", 53}}});
  EXPECT_EQ(emits(p, st, Packet{{"srcip", resolver}, {"dstip", victim},
                                {"srcport", 53}}),
            1u);
}

TEST(Apps, UdpFlood) {
  auto p = apps::udp_flood("t16", 3);
  Value src = 99;
  Packet udp{{"proto", kUdp}, {"srcip", src}};
  Store st;
  int passed = 0;
  for (int i = 0; i < 3; ++i) {
    EvalResult r = eval(p, st, udp);
    st = r.store;
    passed += static_cast<int>(r.packets.size());
  }
  // The threshold-hitting packet is dropped and the source flagged.
  EXPECT_EQ(passed, 2);
  EXPECT_EQ(st.get(state_var_id("t16.udp-flooder"), {src}), kTrue);
  // Non-UDP traffic is unaffected.
  EXPECT_EQ(emits(p, st, Packet{{"proto", 6}, {"srcip", src}}), 1u);
}

TEST(Apps, ElephantFlows) {
  auto p = apps::elephant_flows("t17");
  Packet flow{{"srcip", 1}, {"dstip", 2}, {"srcport", 3}, {"dstport", 4},
              {"proto", 6}};
  Store st;
  // Large-flow sampling keeps one packet in 500.
  int passed = 0;
  for (int i = 0; i < 500; ++i) {
    EvalResult r = eval(p, st, flow);
    st = r.store;
    passed += static_cast<int>(r.packets.size());
  }
  EXPECT_EQ(passed, 1);
  EXPECT_EQ(st.get(state_var_id("t17.flow-size"), {1, 2, 3, 4, 6}), 500);
}

TEST(Apps, TcpStateMachine) {
  auto p = apps::tcp_state_machine("t18");
  StateVarId st_var = state_var_id("t18.tcp-state");
  ValueVec fwd{1, 2, 10, 80, 6};  // client -> server
  // Handshake: client SYN, server SYN-ACK, client ACK.
  Packet syn{{"srcip", 1}, {"dstip", 2}, {"srcport", 10}, {"dstport", 80},
             {"proto", 6}, {"tcp.flags", kSyn}};
  Packet synack{{"srcip", 2}, {"dstip", 1}, {"srcport", 80}, {"dstport", 10},
                {"proto", 6}, {"tcp.flags", kSynAck}};
  Packet ack{{"srcip", 1}, {"dstip", 2}, {"srcport", 10}, {"dstport", 80},
             {"proto", 6}, {"tcp.flags", kAck}};
  Store st = run_trace(p, {syn, synack, ack});
  EXPECT_EQ(st.get(st_var, fwd), kEstablished);
  // Teardown: FIN, FIN-ACK, ACK back to closed.
  Packet fin = syn;
  fin.set("tcp.flags", kFin);
  Packet finack = synack;
  finack.set("tcp.flags", kFinAck);
  st = run_trace(p, {syn, synack, ack, fin, finack, ack});
  EXPECT_EQ(st.get(st_var, fwd), kClosed);
}

TEST(Apps, SnortFlowbits) {
  auto p = apps::snort_flowbits("t19", "10.0.0.0/8", "128.0.0.0/8", 7);
  Packet kindle{{"srcip", ip(10, 1, 1, 1)}, {"dstip", ip(128, 1, 1, 1)},
                {"srcport", 1000}, {"dstport", 80}, {"proto", 6},
                {"content", 7}};
  Store st;
  // Not established: no flowbit.
  st = eval(p, st, kindle).store;
  EXPECT_EQ(st.get(state_var_id("t19.kindle"),
                   {ip(10, 1, 1, 1), ip(128, 1, 1, 1), 1000, 80, 6}),
            kFalse);
  // Established flow with matching content sets the bit.
  st.set(state_var_id("t19.established"),
         {ip(10, 1, 1, 1), ip(128, 1, 1, 1), 1000, 80, 6}, kTrue);
  st = eval(p, st, kindle).store;
  EXPECT_EQ(st.get(state_var_id("t19.kindle"),
                   {ip(10, 1, 1, 1), ip(128, 1, 1, 1), 1000, 80, 6}),
            kTrue);
}

TEST(Apps, PerPortCounter) {
  auto p = apps::per_port_counter("t20");
  Store st = run_trace(p, {Packet{{"inport", 1}}, Packet{{"inport", 1}},
                           Packet{{"inport", 4}}});
  EXPECT_EQ(st.get(state_var_id("t20.count"), {1}), 2);
  EXPECT_EQ(st.get(state_var_id("t20.count"), {4}), 1);
}

TEST(Apps, AssignEgressAndAssumption) {
  auto egress = apps::assign_egress({{"10.0.1.0/24", 1}, {"10.0.2.0/24", 2}});
  Store st;
  auto r = eval(egress, st, Packet{{"dstip", ip(10, 0, 2, 7)}});
  ASSERT_EQ(r.packets.size(), 1u);
  EXPECT_EQ(r.packets.begin()->get("outport"), 2);
  EXPECT_TRUE(eval(egress, st, Packet{{"dstip", ip(10, 0, 9, 7)}})
                  .packets.empty());

  auto assume = apps::assumption({{"10.0.1.0/24", 1}, {"10.0.2.0/24", 2}});
  EXPECT_TRUE(eval_pred(assume, st,
                        Packet{{"srcip", ip(10, 0, 1, 5)}, {"inport", 1}})
                  .pass);
  EXPECT_FALSE(eval_pred(assume, st,
                         Packet{{"srcip", ip(10, 0, 1, 5)}, {"inport", 2}})
                   .pass);
}

TEST(Apps, ParallelCompositionOfAllAppsIsRaceFree) {
  // The Figure-11 experiment composes the whole suite in parallel, each
  // component guarded to a separate egress's traffic (unguarded, the
  // product of all test spaces makes the diagram blow up — which is
  // exactly why the paper scopes each policy to its own traffic).
  // Distinct prefixes keep state disjoint, so this must compile.
  const auto& reg = apps::registry();
  PolPtr all;
  for (std::size_t i = 0; i < reg.size(); ++i) {
    std::string subnet = "10.0." + std::to_string(i + 1) + ".0/24";
    PolPtr guarded =
        ite(test_cidr("dstip", subnet),
            reg[i].build("pc" + std::to_string(i) + "." + reg[i].name),
            filter(id()));
    all = all ? all + guarded : guarded;
  }
  DependencyGraph deps = DependencyGraph::build(all);
  TestOrder order = deps.test_order();
  XfddStore s;
  XfddId d = 0;
  EXPECT_NO_THROW(d = to_xfdd(s, order, all));
  EXPECT_GT(s.reachable_size(d), 100u);
}

}  // namespace
}  // namespace snap
