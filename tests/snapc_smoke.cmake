# Script-driven end-to-end smoke test for the snapc CLI.
#
# Invoked by CTest as:
#   cmake -DSNAPC=<path-to-snapc> -DWORK_DIR=<scratch dir> -P snapc_smoke.cmake
#
# Writes an examples-style policy + topology pair, compiles it with every
# surface the CLI exposes (--dot, --rules, --threads, --solver), and checks
# exit codes and output shape. Also exercises the error paths (missing file,
# bad flag) which must fail with the documented non-zero codes.

if(NOT DEFINED SNAPC OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DSNAPC=... -DWORK_DIR=... -P snapc_smoke.cmake")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# A DNS-tunnel-detect policy in the concrete syntax of Figure 1, guarded by
# routing for a 4-port line topology (same shape as examples/quickstart).
file(WRITE ${WORK_DIR}/policy.snap
"if dstip = 10.0.4.0/24 & srcport = 53 then
  smoke.orphan[dstip][dns.rdata] <- 1;
  smoke.susp-client[dstip]++;
  if smoke.susp-client[dstip] = threshold then
    smoke.blacklist[dstip] <- 1
  else
    id
else
  id;
if dstip = 10.0.1.0/24 then outport <- 1
else if dstip = 10.0.2.0/24 then outport <- 2
else if dstip = 10.0.3.0/24 then outport <- 3
else if dstip = 10.0.4.0/24 then outport <- 4
else drop
")

file(WRITE ${WORK_DIR}/net.topo
"# 4 switches in a line, one OBS port per switch
switches 4
link 0 1 10
link 1 2 10
link 2 3 10
port 1 0
port 2 1
port 3 2
port 4 3
name smoke-line
")

function(run_snapc expect_rc out_var)
  execute_process(COMMAND ${SNAPC} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  WORKING_DIRECTORY ${WORK_DIR})
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "snapc ${ARGN}: expected exit ${expect_rc}, got ${rc}\n"
                        "stdout:\n${out}\nstderr:\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# 1. Plain compile succeeds and reports phases + placement.
run_snapc(0 out
          --policy ${WORK_DIR}/policy.snap --topology ${WORK_DIR}/net.topo
          --const threshold=10)
foreach(needle "phases \\(s\\):" "state placement:" "smoke.susp-client" "paths:")
  if(NOT out MATCHES "${needle}")
    message(FATAL_ERROR "plain compile output missing '${needle}':\n${out}")
  endif()
endforeach()

# 2. --dot writes a Graphviz file with at least one xFDD branch.
run_snapc(0 out
          --policy ${WORK_DIR}/policy.snap --topology ${WORK_DIR}/net.topo
          --const threshold=10 --dot ${WORK_DIR}/policy.dot --quiet)
if(NOT EXISTS ${WORK_DIR}/policy.dot)
  message(FATAL_ERROR "--dot did not create the output file")
endif()
file(READ ${WORK_DIR}/policy.dot dot)
if(NOT dot MATCHES "digraph" OR NOT dot MATCHES "->")
  message(FATAL_ERROR "--dot output is not a Graphviz digraph:\n${dot}")
endif()

# 3. --rules prints one NetASM program per switch.
run_snapc(0 out
          --policy ${WORK_DIR}/policy.snap --topology ${WORK_DIR}/net.topo
          --const threshold=10 --rules --quiet)
foreach(sw 0 1 2 3)
  if(NOT out MATCHES "switch ${sw} program")
    message(FATAL_ERROR "--rules output missing switch ${sw} program:\n${out}")
  endif()
endforeach()

# 4. --threads: parallel compile agrees with serial on placement and rules.
run_snapc(0 serial_out
          --policy ${WORK_DIR}/policy.snap --topology ${WORK_DIR}/net.topo
          --const threshold=10 --threads 1 --rules --quiet)
run_snapc(0 parallel_out
          --policy ${WORK_DIR}/policy.snap --topology ${WORK_DIR}/net.topo
          --const threshold=10 --threads 4 --rules --quiet)
# Phase times and engine cache counters are diagnostics, not compiler
# output: the parallel path sums per-worker engines (different hit/miss
# split), so only the compiled artifacts must match byte-for-byte.
string(REGEX REPLACE "(phases \\(s\\)|engine):[^\n]*" "" serial_norm "${serial_out}")
string(REGEX REPLACE "(phases \\(s\\)|engine):[^\n]*" "" parallel_norm "${parallel_out}")
if(NOT serial_norm STREQUAL parallel_norm)
  message(FATAL_ERROR "--threads 4 output differs from --threads 1:\n"
                      "serial:\n${serial_norm}\nparallel:\n${parallel_norm}")
endif()

# 5. --solver exact on this small instance still succeeds.
run_snapc(0 out
          --policy ${WORK_DIR}/policy.snap --topology ${WORK_DIR}/net.topo
          --const threshold=10 --solver exact --quiet)
if(NOT out MATCHES "exact MILP")
  message(FATAL_ERROR "--solver exact did not use the exact MILP:\n${out}")
endif()

# 6. Error paths: missing input file -> 1, bad usage -> 2.
run_snapc(1 out
          --policy ${WORK_DIR}/no_such.snap --topology ${WORK_DIR}/net.topo)
run_snapc(2 out --policy ${WORK_DIR}/policy.snap)
run_snapc(2 out --bogus-flag)

# 7. The documented error taxonomy: ParseError -> 2, CompileError -> 3,
#    InfeasibleError -> 4.
file(WRITE ${WORK_DIR}/bad.snap "if dstip then else nonsense")
run_snapc(2 out
          --policy ${WORK_DIR}/bad.snap --topology ${WORK_DIR}/net.topo)
# Parallel writes to one state variable race: rejected at xFDD composition.
file(WRITE ${WORK_DIR}/race.snap
     "race.s[srcip] <- 1 + race.s[srcip] <- 2")
run_snapc(3 out
          --policy ${WORK_DIR}/race.snap --topology ${WORK_DIR}/net.topo)
# Two switches with no link between them: routing is infeasible.
file(WRITE ${WORK_DIR}/split.topo
"switches 2
port 1 0
port 2 1
name split
")
run_snapc(4 out
          --policy ${WORK_DIR}/policy.snap --topology ${WORK_DIR}/split.topo
          --const threshold=10)

# 8. --script drives the live Session: a traffic shift, an edge-switch
#    failure + restore, and a policy change, each reporting its phase
#    subset and rule delta.
file(WRITE ${WORK_DIR}/scenario.txt
"# Table-4 scenario script
traffic 9
fail 0       # switch 0 is an endpoint: the line stays connected
restore 0
policy ${WORK_DIR}/policy.snap
")
run_snapc(0 out
          --policy ${WORK_DIR}/policy.snap --topology ${WORK_DIR}/net.topo
          --const threshold=10 --script ${WORK_DIR}/scenario.txt --quiet)
foreach(needle
        "event traffic 9"
        "phases run: P5\\(TE\\) P6"
        "event fail 0"
        "phases run: P3 P4 P5\\(ST\\) P6"
        "-1 removed"
        "event restore 0"
        "\\+1 added"
        "event policy")
  if(NOT out MATCHES "${needle}")
    message(FATAL_ERROR "--script output missing '${needle}':\n${out}")
  endif()
endforeach()
# A failure that disconnects the line is infeasible even mid-script.
file(WRITE ${WORK_DIR}/cut.txt "fail 1\n")
run_snapc(4 out
          --policy ${WORK_DIR}/policy.snap --topology ${WORK_DIR}/net.topo
          --const threshold=10 --script ${WORK_DIR}/cut.txt --quiet)
# Malformed script arguments are parse errors (exit 2), not crashes.
file(WRITE ${WORK_DIR}/badev.txt "fail abc\n")
run_snapc(2 out
          --policy ${WORK_DIR}/policy.snap --topology ${WORK_DIR}/net.topo
          --const threshold=10 --script ${WORK_DIR}/badev.txt --quiet)

# 9. --json emits the machine-readable report (events, phase times, delta
#    sizes, slices).
run_snapc(0 out
          --policy ${WORK_DIR}/policy.snap --topology ${WORK_DIR}/net.topo
          --const threshold=10 --script ${WORK_DIR}/scenario.txt --json)
foreach(needle
        "\"events\":"
        "\"event\":\"cold_start\""
        "\"event\":\"traffic\""
        "\"phases_run\":\\[\"P5\\(TE\\)\",\"P6\"\\]"
        "\"delta\":"
        "\"removed\":1"
        "\"placement\":"
        "\"slices\":"
        "\"engine\":"
        "\"expansions\":")
  if(NOT out MATCHES "${needle}")
    message(FATAL_ERROR "--json output missing '${needle}':\n${out}")
  endif()
endforeach()

message(STATUS "snapc smoke test passed")
