// Topology generators (Table 5 statistics), graph algorithms, and the
// gravity traffic model.
#include <gtest/gtest.h>

#include <queue>

#include "topo/gen.h"
#include "topo/traffic.h"

namespace snap {
namespace {

bool strongly_connected(const Topology& t) {
  // BFS out from 0 and over reversed links.
  auto bfs = [&](bool reversed) {
    std::vector<bool> seen(t.num_switches(), false);
    std::queue<int> q;
    q.push(0);
    seen[0] = true;
    int count = 1;
    while (!q.empty()) {
      int u = q.front();
      q.pop();
      for (const Link& l : t.links()) {
        int from = reversed ? l.dst : l.src;
        int to = reversed ? l.src : l.dst;
        if (from == u && !seen[to]) {
          seen[to] = true;
          ++count;
          q.push(to);
        }
      }
    }
    return count == t.num_switches();
  };
  return bfs(false) && bfs(true);
}

TEST(Topo, Figure2CampusShape) {
  Topology t = make_figure2_campus();
  EXPECT_EQ(t.num_switches(), 12);
  EXPECT_EQ(t.ports().size(), 6u);
  EXPECT_TRUE(strongly_connected(t));
  // Port 6 is the CS department's edge (D4 = switch 5).
  EXPECT_EQ(t.port_switch(6), 5);
}

TEST(Topo, Table5StatisticsMatchThePaper) {
  for (const auto& spec : table5_specs()) {
    Topology t = make_table5_topology(spec, 42);
    EXPECT_EQ(t.num_switches(), spec.switches) << spec.name;
    EXPECT_EQ(static_cast<int>(t.links().size()), spec.directed_links)
        << spec.name;
    int expected_ports =
        spec.campus ? spec.ports : static_cast<int>(spec.switches * 0.7);
    EXPECT_EQ(static_cast<int>(t.ports().size()), expected_ports) << spec.name;
    EXPECT_TRUE(strongly_connected(t)) << spec.name;
  }
}

TEST(Topo, Table5DemandCountsMatchThePaper) {
  // #Demands in Table 5 equals (#ports)^2 including the diagonal the paper
  // counts: Stanford 144^2 = 20736, AS 1755: 60^2 = 3600.
  const std::map<std::string, int> expected{
      {"Stanford", 20736}, {"Berkeley", 34225}, {"Purdue", 24336},
      {"AS 1755", 3600},   {"AS 1221", 5184},   {"AS 6461", 9216},
      {"AS 3257", 12544},
  };
  for (const auto& spec : table5_specs()) {
    Topology t = make_table5_topology(spec, 1);
    int p = static_cast<int>(t.ports().size());
    EXPECT_EQ(p * p, expected.at(spec.name)) << spec.name;
  }
}

TEST(Topo, IgenIsConnectedAcrossSizes) {
  for (int n : {10, 50, 120}) {
    Topology t = make_igen(n, 7);
    EXPECT_EQ(t.num_switches(), n);
    EXPECT_TRUE(strongly_connected(t));
    EXPECT_EQ(static_cast<int>(t.ports().size()),
              static_cast<int>(n * 0.7));
  }
}

TEST(Topo, GeneratorsAreDeterministic) {
  Topology a = make_igen(30, 5);
  Topology b = make_igen(30, 5);
  EXPECT_EQ(a.links().size(), b.links().size());
  for (std::size_t i = 0; i < a.links().size(); ++i) {
    EXPECT_EQ(a.links()[i].src, b.links()[i].src);
    EXPECT_EQ(a.links()[i].dst, b.links()[i].dst);
  }
}

TEST(Topo, ShortestPathsAreSane) {
  Topology t = make_figure2_campus();
  auto path = t.shortest_path(0, 5);  // I1 -> D4
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 5);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_GE(t.link_index(path[i], path[i + 1]), 0);
  }
  EXPECT_EQ(t.shortest_path(3, 3), std::vector<int>{3});
}

TEST(Topo, DijkstraRespectsWeights) {
  Topology t("tri", 3);
  t.add_duplex(0, 1, 10);
  t.add_duplex(1, 2, 10);
  t.add_duplex(0, 2, 10);
  std::vector<double> w(t.links().size(), 1.0);
  // Make the direct 0->2 link expensive.
  w[static_cast<std::size_t>(t.link_index(0, 2))] = 10.0;
  auto path = t.weighted_path(0, 2, w);
  ASSERT_EQ(path.size(), 3u);  // detour via 1
  EXPECT_EQ(path[1], 1);
}

TEST(Traffic, GravityModelSumsToTotal) {
  Topology t = make_figure2_campus();
  TrafficMatrix tm = gravity_traffic(t, 100.0, 3);
  EXPECT_NEAR(tm.total(), 100.0, 1e-6);
  // No self-demand, all entries nonnegative.
  for (const auto& [uv, d] : tm.demands()) {
    EXPECT_NE(uv.first, uv.second);
    EXPECT_GE(d, 0.0);
  }
  // All ordered pairs present.
  EXPECT_EQ(tm.demands().size(), 6u * 5u);
}

TEST(Traffic, DeterministicPerSeed) {
  Topology t = make_figure2_campus();
  TrafficMatrix a = gravity_traffic(t, 10.0, 9);
  TrafficMatrix b = gravity_traffic(t, 10.0, 9);
  EXPECT_EQ(a.demands(), b.demands());
  TrafficMatrix c = gravity_traffic(t, 10.0, 10);
  EXPECT_NE(a.demands(), c.demands());
}

}  // namespace
}  // namespace snap
